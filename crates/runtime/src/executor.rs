//! Tile-level execution of arbitrary-size matmuls on one physical core.
//!
//! A [`TileExecutor`] owns one calibrated [`TensorCore`], streams a
//! [`TiledMatrix`]'s tiles through the optical write path, digitises each
//! tile's partial products with the per-row eoADCs, and accumulates the
//! ADC codes digitally — the post-ADC partial-sum reduction of a tiled
//! photonic accelerator. Residency tracking (which tile the array
//! currently holds, pinned to the pSRAM write-generation counter) lets a
//! device that keeps serving the same matrix skip the rewrite entirely.

use crate::request::{OutputElement, RequestCost, RuntimeError};
use crate::tile::{TileKey, TiledMatrix};
use pic_tensor::{
    FlatBatch, FlatCodes, StreamingSchedule, TensorCore, TensorCoreConfig, WriteParallelism,
};

/// Reusable per-executor working memory for the tiled execute path.
///
/// Every arena persists across requests, batches and tile visits, and
/// only ever grows to the largest request shape seen, so a device in
/// steady state performs zero heap allocations per request: input splits,
/// per-tile ADC codes, and digital accumulators all live here. The
/// splits and codes arenas are reshaped *without* zero-filling (their
/// kernels overwrite every element — see
/// [`FlatBatch::reset_for_overwrite`]); only `code_sums` is re-zeroed,
/// because the tile loop accumulates into it.
#[derive(Debug, Default)]
struct ExecScratch {
    /// Split inputs, tile-column-major: tile column `bc` of a
    /// `samples`-row batch occupies rows `bc·samples .. (bc+1)·samples`,
    /// each `shape.cols` wide — so each tile pass reads one contiguous
    /// zero-copy window.
    splits: FlatBatch,
    /// One tile pass's ADC codes (`samples × rows`).
    codes: FlatCodes,
    /// Flat `samples × out_dim` digital code accumulators.
    code_sums: Vec<u32>,
}

/// One calibrated device executing tiled matmuls.
#[derive(Debug)]
pub struct TileExecutor {
    core: TensorCore,
    device_id: usize,
    /// The tile the physical array currently holds, with the weight
    /// generation observed right after it was written. A residency hit
    /// requires both the key and the generation to match — any mutation
    /// of the array in between invalidates the claim.
    resident: Option<(TileKey, u64)>,
    /// Measured analog/ideal ratio the read-out gain compensates.
    insertion_ratio: f64,
    /// Reusable request-scoped working memory.
    scratch: ExecScratch,
}

impl TileExecutor {
    /// Builds and calibrates a device.
    ///
    /// Calibration measures the core's flat insertion loss (the
    /// analog/ideal ratio is constant across rows and weights — it is a
    /// property of the splitter ladder, not the stored pattern) with an
    /// all-max weight load and a ones input, then sets the read-out gain
    /// to its inverse. After this the per-tile ADC codes match ideal
    /// quantisation to within the converter's own step, which is what
    /// makes digital accumulation across tiles agree with a whole-matrix
    /// reference.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: TensorCoreConfig, device_id: usize) -> Self {
        let mut core = TensorCore::new(config);
        let max_code = (1u32 << config.weight_bits) - 1;
        core.load_weight_codes(&vec![vec![max_code; config.cols]; config.rows]);
        let ones = vec![1.0; config.cols];
        let analog = core.matvec_analog(&ones);
        let ideal = core.matvec_ideal(&ones);
        let ratio = analog.iter().zip(&ideal).map(|(a, i)| a / i).sum::<f64>() / config.rows as f64;
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "calibration measured a non-physical insertion ratio {ratio}"
        );
        core.set_readout_gain(1.0 / ratio);
        TileExecutor {
            core,
            device_id,
            resident: None,
            insertion_ratio: ratio,
            scratch: ExecScratch::default(),
        }
    }

    /// The device's id within its pool.
    #[must_use]
    pub fn device_id(&self) -> usize {
        self.device_id
    }

    /// The measured insertion ratio the read-out gain compensates.
    #[must_use]
    pub fn insertion_ratio(&self) -> f64 {
        self.insertion_ratio
    }

    /// The tile currently resident on the array, if its residency claim
    /// is still valid against the weight-generation counter.
    #[must_use]
    pub fn resident_tile(&self) -> Option<TileKey> {
        match self.resident {
            Some((key, gen)) if gen == self.core.weight_generation() => Some(key),
            _ => None,
        }
    }

    /// Read access to the underlying core (for accuracy cross-checks).
    #[must_use]
    pub fn core(&self) -> &TensorCore {
        &self.core
    }

    /// Bytes of reusable scratch currently held (input splits, per-tile
    /// codes, digital accumulators) — the steady-state allocation
    /// high-water mark of the execute path. Stable across repeated
    /// requests of the same shape, which is exactly the zero-allocation
    /// contract the tests pin down.
    #[must_use]
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.splits.capacity() * size_of::<f64>()
            + self.scratch.codes.capacity() * size_of::<u16>()
            + self.scratch.code_sums.capacity() * size_of::<u32>()
    }

    /// Makes `tile` resident, streaming it through the optical write path
    /// unless it already is. Returns the write energy charged (zero on a
    /// residency hit) and whether a write happened.
    fn ensure_resident(&mut self, matrix: &TiledMatrix, key: TileKey) -> (f64, bool) {
        if self.resident_tile() == Some(key) {
            return (0.0, false);
        }
        let _span = pic_obs::Span::enter(pic_obs::Stage::Write);
        let tile = matrix.tile(key.block_row, key.block_col);
        let (energy, _flips) = self.core.write_weights_transient(tile.codes());
        self.resident = Some((key, self.core.weight_generation()));
        (energy.as_joules(), true)
    }

    /// Executes `matrix · inputsᵀ` by streaming tiles and accumulating
    /// per-tile ADC codes digitally.
    ///
    /// Each output element reports the raw `code_sum` and a dequantised
    /// `value` comparable to a whole-matrix
    /// [`TensorCore::matvec_ideal`](pic_tensor::TensorCore::matvec_ideal)
    /// result. The returned [`RequestCost`] charges compute time/energy
    /// from the [`StreamingSchedule`] hardware model and write energy
    /// from the actual transients (scaled down by residency hits).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidRequest`] on shape or input-range
    /// violations — the serving path never panics on request data.
    pub fn execute(
        &mut self,
        matrix: &TiledMatrix,
        inputs: &[Vec<f64>],
    ) -> Result<(Vec<Vec<OutputElement>>, RequestCost), RuntimeError> {
        let slices: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        self.execute_slices(matrix, &slices)
    }

    /// Slice-based form of [`TileExecutor::execute`] — the scheduler's
    /// entry point, which lets a dispatch batch merge several requests'
    /// inputs without copying any sample data. All per-request working
    /// memory comes from the executor's reusable scratch: inputs are
    /// split once into a tile-column-major flat arena, each tile pass
    /// reads a contiguous window of it through the core's
    /// zero-allocation kernel, and code sums accumulate into a flat
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidRequest`] on shape or input-range
    /// violations — the serving path never panics on request data.
    pub fn execute_slices(
        &mut self,
        matrix: &TiledMatrix,
        inputs: &[&[f64]],
    ) -> Result<(Vec<Vec<OutputElement>>, RequestCost), RuntimeError> {
        let config = *self.core.config();
        if matrix.shape().rows != config.rows || matrix.shape().cols != config.cols {
            return Err(RuntimeError::InvalidRequest(format!(
                "matrix tiled for {}×{} arrays but the device is {}×{}",
                matrix.shape().rows,
                matrix.shape().cols,
                config.rows,
                config.cols
            )));
        }
        if inputs.is_empty() {
            return Err(RuntimeError::InvalidRequest(
                "request batch is empty".to_owned(),
            ));
        }
        for (s, x) in inputs.iter().enumerate() {
            if x.len() != matrix.in_dim() {
                return Err(RuntimeError::InvalidRequest(format!(
                    "input {s} has length {} but the matrix takes {}",
                    x.len(),
                    matrix.in_dim()
                )));
            }
            // The range check alone happens to reject NaN (comparisons on
            // NaN are false), but the analog model's safety must not hinge
            // on comparison semantics — reject non-finite values explicitly.
            if !x.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)) {
                return Err(RuntimeError::InvalidRequest(format!(
                    "input {s} leaves the [0, 1] intensity range"
                )));
            }
        }

        // Split every input into its per-tile-column slices once, into the
        // reusable scratch. Tile-column-major layout: the whole batch for
        // tile column `bc` is one contiguous run of rows.
        let samples = inputs.len();
        let out_dim = matrix.out_dim();
        matrix.split_columns_into(inputs, &mut self.scratch.splits);
        self.scratch.code_sums.clear();
        self.scratch.code_sums.resize(samples * out_dim, 0);

        let mut write_energy = 0.0;
        let mut written = 0usize;
        let mut written_row_slots = 0usize;
        for br in 0..matrix.block_rows() {
            let rows_here = (out_dim - br * config.rows).min(config.rows);
            for bc in 0..matrix.block_cols() {
                let key = matrix.tile(br, bc).key();
                let (energy, wrote) = self.ensure_resident(matrix, key);
                write_energy += energy;
                written += usize::from(wrote);
                if wrote {
                    // Under the per-row write schedule a streamed tile
                    // costs one slot per row that carries real weights —
                    // tiles on a ragged last block-row hold fewer.
                    written_row_slots += rows_here;
                }

                let batch = self.scratch.splits.view_rows(bc * samples, samples);
                self.core.matmul_into(batch, &mut self.scratch.codes);
                let _merge = pic_obs::Span::enter(pic_obs::Stage::Merge);
                for s in 0..samples {
                    let codes = self.scratch.codes.row(s);
                    let acc_start = s * out_dim + br * config.rows;
                    for (acc, &code) in self.scratch.code_sums[acc_start..acc_start + rows_here]
                        .iter_mut()
                        .zip(codes)
                    {
                        *acc += u32::from(code);
                    }
                }
            }
        }

        // Dequantise: each tile code estimates `dot_tile/(tile_cols·max)`
        // on a `levels−1` scale, so the whole-matrix estimate rescales the
        // code sum by the tile-to-matrix width ratio.
        let _merge = pic_obs::Span::enter(pic_obs::Stage::Merge);
        let levels = config.adc.channel_count() as f64;
        let scale = config.cols as f64 / matrix.in_dim() as f64 / (levels - 1.0);
        let outputs: Vec<Vec<OutputElement>> = (0..samples)
            .map(|s| {
                self.scratch.code_sums[s * out_dim..(s + 1) * out_dim]
                    .iter()
                    .map(|&code_sum| OutputElement {
                        code_sum,
                        value: f64::from(code_sum) * scale,
                    })
                    .collect()
            })
            .collect();

        let report = StreamingSchedule::new(
            config,
            out_dim,
            matrix.in_dim(),
            samples,
            WriteParallelism::PerRow,
        )
        .report();
        let tiles = matrix.tile_count();
        let cost = RequestCost {
            tiles,
            tiles_written: written,
            tiles_resident: tiles - written,
            // Charged from the per-tile write schedule of the tiles that
            // actually streamed: `rows_here` update slots each. (Scaling
            // the full-schedule time by `written/tiles` misattributed
            // time whenever a ragged last block-row made tiles unequal.)
            write_time_s: written_row_slots as f64 * config.psram.update_rate.period().as_seconds(),
            compute_time_s: report.compute_time_s,
            write_energy_j: write_energy,
            compute_energy_j: report.compute_energy_j,
        };
        Ok((outputs, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::TileShape;

    fn small() -> TensorCoreConfig {
        TensorCoreConfig::small_demo()
    }

    fn codes(out: usize, inp: usize) -> Vec<Vec<u32>> {
        (0..out)
            .map(|r| (0..inp).map(|c| ((r * 5 + c * 3) % 8) as u32).collect())
            .collect()
    }

    /// The whole-matrix reference: ideal normalised product, digitised
    /// per tile through the same quantisation the calibrated core applies.
    fn reference_code_sums(m: &TiledMatrix, x: &[f64], levels: u32) -> Vec<u32> {
        let shape = m.shape();
        let max_code = f64::from((1u32 << 3) - 1);
        let parts = m.split_input(x);
        (0..m.out_dim())
            .map(|gr| {
                let (br, lr) = (gr / shape.rows, gr % shape.rows);
                (0..m.block_cols())
                    .map(|bc| {
                        let tile = m.tile(br, bc);
                        let dot: f64 = tile.codes()[lr]
                            .iter()
                            .zip(&parts[bc])
                            .map(|(&w, &xv)| f64::from(w) * xv)
                            .sum();
                        let ideal = dot / (shape.cols as f64 * max_code);
                        // Round-to-nearest quantisation on a levels−1 scale.
                        ((ideal * f64::from(levels - 1)).round() as u32).min(levels - 1)
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn calibration_compensates_insertion_loss() {
        let exec = TileExecutor::new(small(), 0);
        let ratio = exec.insertion_ratio();
        assert!(ratio > 0.5 && ratio < 1.0, "insertion ratio {ratio}");
        assert!((exec.core().readout_gain() * ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_tile_matmul_matches_the_core_directly() {
        let cfg = small();
        let mut exec = TileExecutor::new(cfg, 0);
        let m = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(4, 4));
        let x = vec![vec![0.9, 0.1, 0.5, 0.7]];
        let (out, cost) = exec.execute(&m, &x).expect("valid request");

        let mut core = TensorCore::new(cfg);
        core.load_weight_codes(&codes(4, 4));
        core.set_readout_gain(exec.core().readout_gain());
        let want = core.matvec(&x[0]);
        let got: Vec<u16> = out[0].iter().map(|e| e.code_sum as u16).collect();
        assert_eq!(got, want);
        assert_eq!((cost.tiles, cost.tiles_written), (1, 1));
    }

    #[test]
    fn multi_tile_accumulation_tracks_the_reference() {
        let cfg = small();
        let mut exec = TileExecutor::new(cfg, 0);
        let m = TiledMatrix::from_codes(&codes(10, 9), 3, TileShape::new(4, 4));
        assert_eq!(m.tile_count(), 9);
        let x: Vec<f64> = (0..9).map(|i| f64::from(i as u32) / 9.0).collect();
        let (out, cost) = exec
            .execute(&m, std::slice::from_ref(&x))
            .expect("valid request");
        let levels = cfg.adc.channel_count() as u32;
        let want = reference_code_sums(&m, &x, levels);
        for (gr, (got, want)) in out[0].iter().zip(&want).enumerate() {
            let diff = i64::from(got.code_sum) - i64::from(*want);
            assert!(
                diff.abs() <= i64::from(m.block_cols() as u32),
                "row {gr}: accumulated {} vs reference {want}",
                got.code_sum
            );
        }
        assert_eq!(cost.tiles_written, 9, "cold device writes every tile");
    }

    #[test]
    fn residency_skips_rewrites_on_repeat_requests() {
        let mut exec = TileExecutor::new(small(), 0);
        let m = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(4, 4));
        let x = vec![vec![0.5; 4]];
        let (_, first) = exec.execute(&m, &x).expect("valid");
        assert_eq!(first.tiles_written, 1);
        assert!(first.write_energy_j > 0.0);
        let (_, second) = exec.execute(&m, &x).expect("valid");
        assert_eq!(second.tiles_written, 0, "tile already resident");
        assert_eq!(second.tiles_resident, 1);
        assert_eq!(second.write_energy_j, 0.0);
        assert!(second.write_time_s == 0.0);
        assert_eq!(exec.resident_tile(), Some(m.tile(0, 0).key()));
    }

    #[test]
    fn residency_claim_dies_with_external_mutation() {
        let m = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(4, 4));
        let mut exec = TileExecutor::new(small(), 0);
        let x = vec![vec![0.5; 4]];
        let _ = exec.execute(&m, &x).expect("valid");
        assert!(exec.resident_tile().is_some());
        // Another matrix takes the array over; the first claim must die.
        let other = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(4, 4));
        let _ = exec.execute(&other, &x).expect("valid");
        assert_eq!(exec.resident_tile(), Some(other.tile(0, 0).key()));
        let (_, cost) = exec.execute(&m, &x).expect("valid");
        assert_eq!(cost.tiles_written, 1, "evicted tile must be rewritten");
    }

    #[test]
    fn execute_rejects_bad_requests_with_typed_errors() {
        let mut exec = TileExecutor::new(small(), 0);
        let m = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(4, 4));
        assert!(matches!(
            exec.execute(&m, &[]),
            Err(RuntimeError::InvalidRequest(_))
        ));
        assert!(matches!(
            exec.execute(&m, &[vec![0.5; 3]]),
            Err(RuntimeError::InvalidRequest(_))
        ));
        assert!(matches!(
            exec.execute(&m, &[vec![2.0; 4]]),
            Err(RuntimeError::InvalidRequest(_))
        ));
        let wrong_shape = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(2, 2));
        assert!(matches!(
            exec.execute(&wrong_shape, &[vec![0.5; 4]]),
            Err(RuntimeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn execute_rejects_non_finite_inputs() {
        let mut exec = TileExecutor::new(small(), 0);
        let m = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(4, 4));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut x = vec![0.5; 4];
            x[2] = bad;
            assert!(
                matches!(exec.execute(&m, &[x]), Err(RuntimeError::InvalidRequest(_))),
                "{bad} must be a typed rejection, not a panic in the analog model"
            );
        }
    }

    #[test]
    fn execute_slices_matches_execute() {
        let mut a = TileExecutor::new(small(), 0);
        let mut b = TileExecutor::new(small(), 1);
        let m = TiledMatrix::from_codes(&codes(10, 9), 3, TileShape::new(4, 4));
        let batch: Vec<Vec<f64>> = (0..3)
            .map(|s| (0..9).map(|c| ((s * 9 + c) % 10) as f64 / 10.0).collect())
            .collect();
        let slices: Vec<&[f64]> = batch.iter().map(Vec::as_slice).collect();
        let (out_a, cost_a) = a.execute(&m, &batch).expect("valid");
        let (out_b, cost_b) = b.execute_slices(&m, &slices).expect("valid");
        assert_eq!(out_a, out_b);
        assert_eq!(cost_a, cost_b);
    }

    #[test]
    fn ragged_write_time_charges_only_real_rows() {
        // A 20×16 matrix on the paper's 16×16 array: two tiles stacked in
        // one tile column, the second holding only 4 real rows. Each
        // streamed tile is charged per real row under the per-row write
        // schedule, so a cold pass costs 16 + 4 = 20 update slots — not
        // the 32 the old full-schedule `written/tiles` scaling implied.
        let cfg = TensorCoreConfig::paper();
        let mut exec = TileExecutor::new(cfg, 0);
        let m = TiledMatrix::from_codes(&codes(20, 16), 3, TileShape::new(16, 16));
        assert_eq!((m.block_rows(), m.block_cols()), (2, 1));
        let x = vec![vec![0.5; 16]];
        let (_, cost) = exec.execute(&m, &x).expect("valid");
        assert_eq!(cost.tiles_written, 2);
        let period = cfg.psram.update_rate.period().as_seconds();
        let want = 20.0 * period;
        assert!(
            (cost.write_time_s - want).abs() < 1e-18,
            "ragged write time {} s, want {} s (20 row slots)",
            cost.write_time_s,
            want
        );
        assert!(
            cost.write_time_s < 0.7 * 32.0 * period,
            "old scaling would charge 32 slots"
        );
    }

    #[test]
    fn steady_state_execute_reuses_scratch() {
        let mut exec = TileExecutor::new(small(), 0);
        let m = TiledMatrix::from_codes(&codes(10, 9), 3, TileShape::new(4, 4));
        let batch: Vec<Vec<f64>> = (0..2)
            .map(|s| (0..9).map(|c| ((s + c) % 7) as f64 / 7.0).collect())
            .collect();
        let _ = exec.execute(&m, &batch).expect("valid");
        let bytes = exec.scratch_bytes();
        assert!(bytes > 0, "first request must size the scratch");
        for _ in 0..10 {
            let _ = exec.execute(&m, &batch).expect("valid");
            assert_eq!(
                exec.scratch_bytes(),
                bytes,
                "steady-state requests must not regrow the scratch"
            );
        }
        // A smaller request reuses the same arenas without shrinking them.
        let _ = exec.execute(&m, &batch[..1]).expect("valid");
        assert_eq!(exec.scratch_bytes(), bytes);
    }

    #[test]
    fn cost_scales_write_time_with_hits() {
        let mut exec = TileExecutor::new(small(), 0);
        let m = TiledMatrix::from_codes(&codes(8, 4), 3, TileShape::new(4, 4));
        let x = vec![vec![0.25; 4]];
        let (_, cold) = exec.execute(&m, &x).expect("valid");
        assert_eq!((cold.tiles, cold.tiles_written), (2, 2));
        assert!(cold.write_time_s > 0.0 && cold.compute_time_s > 0.0);
        assert!(cold.total_time_s() > cold.compute_time_s);
        // The second pass still rewrites (two tiles fight over one array),
        // so written stays 2 — but the accounting must stay consistent.
        let (_, warm) = exec.execute(&m, &x).expect("valid");
        assert_eq!(warm.tiles_written + warm.tiles_resident, warm.tiles);
    }
}
