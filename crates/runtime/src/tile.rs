//! Tiling of arbitrary `out × in` weight matrices onto a fixed-size core.
//!
//! The physical array is `rows × cols` (16×16 in the paper); a larger
//! matrix is decomposed into a grid of zero-padded tiles that stream
//! through the array one at a time (§II-A's "datasets exceed memory
//! array capacity" scenario). Each tile carries a globally unique
//! [`TileKey`] so device-side residency tracking can recognise a tile it
//! already holds and skip the rewrite.

use pic_tensor::{quant, FlatBatch};
use std::sync::atomic::{AtomicU64, Ordering};

/// The physical array shape tiles are cut to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileShape {
    /// Physical array rows.
    pub rows: usize,
    /// Physical array columns.
    pub cols: usize,
}

impl TileShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile shape must be non-empty");
        TileShape { rows, cols }
    }
}

/// Globally unique identity of one weight tile: which matrix it belongs
/// to and where it sits in that matrix's tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// The owning [`TiledMatrix`]'s id.
    pub matrix: u64,
    /// Tile row in the grid (`out` direction).
    pub block_row: usize,
    /// Tile column in the grid (`in` direction).
    pub block_col: usize,
}

/// One zero-padded weight tile, ready to load into the array.
#[derive(Debug, Clone)]
pub struct Tile {
    key: TileKey,
    codes: Vec<Vec<u32>>,
}

impl Tile {
    /// The tile's identity.
    #[must_use]
    pub fn key(&self) -> TileKey {
        self.key
    }

    /// The padded `rows × cols` weight codes.
    #[must_use]
    pub fn codes(&self) -> &[Vec<u32>] {
        &self.codes
    }
}

/// Source of unique matrix ids (process-wide, never reused).
static NEXT_MATRIX_ID: AtomicU64 = AtomicU64::new(1);

/// An `out × in` weight-code matrix decomposed into core-sized tiles.
///
/// Construction quantises/validates once; the result is immutable and is
/// shared across requests via `Arc`, which is what makes device-side
/// residency tracking sound: a [`TileKey`] always refers to the same
/// codes.
#[derive(Debug)]
pub struct TiledMatrix {
    id: u64,
    out_dim: usize,
    in_dim: usize,
    shape: TileShape,
    block_rows: usize,
    block_cols: usize,
    /// Row-major tile grid (`block_rows × block_cols`).
    tiles: Vec<Tile>,
}

impl TiledMatrix {
    /// Tiles a matrix of integer weight codes.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty or ragged, or any code does not fit in
    /// `weight_bits`.
    #[must_use]
    pub fn from_codes(codes: &[Vec<u32>], weight_bits: u32, shape: TileShape) -> Self {
        let out_dim = codes.len();
        assert!(out_dim > 0, "matrix needs at least one row");
        let in_dim = codes[0].len();
        assert!(in_dim > 0, "matrix needs at least one column");
        assert!(
            codes.iter().all(|r| r.len() == in_dim),
            "weight matrix must be rectangular"
        );
        let max_code = (1u32 << weight_bits) - 1;
        for (r, row) in codes.iter().enumerate() {
            for (c, &w) in row.iter().enumerate() {
                assert!(
                    w <= max_code,
                    "code {w} at ({r}, {c}) does not fit in {weight_bits} bits"
                );
            }
        }

        let id = NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed);
        let block_rows = out_dim.div_ceil(shape.rows);
        let block_cols = in_dim.div_ceil(shape.cols);
        let mut tiles = Vec::with_capacity(block_rows * block_cols);
        for br in 0..block_rows {
            for bc in 0..block_cols {
                let tile_codes: Vec<Vec<u32>> = (0..shape.rows)
                    .map(|r| {
                        (0..shape.cols)
                            .map(|c| {
                                let (gr, gc) = (br * shape.rows + r, bc * shape.cols + c);
                                if gr < out_dim && gc < in_dim {
                                    codes[gr][gc]
                                } else {
                                    0
                                }
                            })
                            .collect()
                    })
                    .collect();
                tiles.push(Tile {
                    key: TileKey {
                        matrix: id,
                        block_row: br,
                        block_col: bc,
                    },
                    codes: tile_codes,
                });
            }
        }
        TiledMatrix {
            id,
            out_dim,
            in_dim,
            shape,
            block_rows,
            block_cols,
            tiles,
        }
    }

    /// Quantises real-valued weights in `[0, 1]` and tiles the codes.
    ///
    /// # Panics
    ///
    /// Panics like [`TiledMatrix::from_codes`], or if any weight leaves
    /// `[0, 1]`.
    #[must_use]
    pub fn from_weights(weights: &[Vec<f64>], weight_bits: u32, shape: TileShape) -> Self {
        TiledMatrix::from_codes(
            &quant::quantize_matrix(weights, weight_bits),
            weight_bits,
            shape,
        )
    }

    /// The matrix's unique id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Logical output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Logical input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// The physical tile shape.
    #[must_use]
    pub fn shape(&self) -> TileShape {
        self.shape
    }

    /// Tile-grid rows (`⌈out/rows⌉`).
    #[must_use]
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Tile-grid columns (`⌈in/cols⌉`).
    #[must_use]
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Total tiles in the grid.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// The tile at grid position (`block_row`, `block_col`).
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the grid.
    #[must_use]
    pub fn tile(&self, block_row: usize, block_col: usize) -> &Tile {
        assert!(
            block_row < self.block_rows && block_col < self.block_cols,
            "tile ({block_row}, {block_col}) outside {}×{} grid",
            self.block_rows,
            self.block_cols
        );
        &self.tiles[block_row * self.block_cols + block_col]
    }

    /// Carves a contiguous tile-grid window out of this matrix as a new,
    /// independently-identified [`TiledMatrix`].
    ///
    /// The shard reuses the parent's tile *codes* verbatim (cloned, not
    /// re-quantised), re-keyed under a fresh matrix id so device-side
    /// residency tracking treats the shard as its own matrix. Ranges are
    /// half-open in tile-grid units. The shard's logical dimensions are
    /// the real (unpadded) extents of the window, so a window containing
    /// the parent's ragged last block row/column stays ragged.
    ///
    /// This is the primitive `pic-cluster`'s shard planner is built on:
    /// block-row shards of a matrix go to different nodes and their
    /// post-ADC code sums add back exactly (digital accumulation is
    /// associative), so a cluster reduce over shards is bit-identical to
    /// the single-node result.
    ///
    /// # Panics
    ///
    /// Panics if either range is empty or extends past the tile grid.
    #[must_use]
    pub fn shard(
        &self,
        block_rows: std::ops::Range<usize>,
        block_cols: std::ops::Range<usize>,
    ) -> TiledMatrix {
        assert!(
            !block_rows.is_empty() && block_rows.end <= self.block_rows,
            "shard rows {block_rows:?} outside 0..{}",
            self.block_rows
        );
        assert!(
            !block_cols.is_empty() && block_cols.end <= self.block_cols,
            "shard cols {block_cols:?} outside 0..{}",
            self.block_cols
        );
        let id = NEXT_MATRIX_ID.fetch_add(1, Ordering::Relaxed);
        let out_dim = (self.out_dim).min(block_rows.end * self.shape.rows)
            - block_rows.start * self.shape.rows;
        let in_dim = (self.in_dim).min(block_cols.end * self.shape.cols)
            - block_cols.start * self.shape.cols;
        let mut tiles = Vec::with_capacity(block_rows.len() * block_cols.len());
        for (br, parent_br) in block_rows.clone().enumerate() {
            for (bc, parent_bc) in block_cols.clone().enumerate() {
                tiles.push(Tile {
                    key: TileKey {
                        matrix: id,
                        block_row: br,
                        block_col: bc,
                    },
                    codes: self.tile(parent_br, parent_bc).codes.clone(),
                });
            }
        }
        TiledMatrix {
            id,
            out_dim,
            in_dim,
            shape: self.shape,
            block_rows: block_rows.len(),
            block_cols: block_cols.len(),
            tiles,
        }
    }

    /// Splits one input vector of length `in_dim` into per-tile-column
    /// zero-padded slices of length `shape.cols`.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong length.
    #[must_use]
    pub fn split_input(&self, input: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(input.len(), self.in_dim, "one input per matrix column");
        (0..self.block_cols)
            .map(|bc| {
                let mut out = vec![0.0; self.shape.cols];
                self.split_column_into(input, bc, &mut out);
                out
            })
            .collect()
    }

    /// Writes tile-column `block_col`'s zero-padded slice of `input` into
    /// `out` (length `shape.cols`) — the allocation-free form of
    /// [`TiledMatrix::split_input`] the executor's reusable scratch is
    /// filled through. `out` is fully overwritten (real values then
    /// padding zeros).
    ///
    /// # Panics
    ///
    /// Panics if `input` or `out` have the wrong length, or `block_col`
    /// is outside the grid.
    pub fn split_column_into(&self, input: &[f64], block_col: usize, out: &mut [f64]) {
        assert_eq!(input.len(), self.in_dim, "one input per matrix column");
        assert!(
            block_col < self.block_cols,
            "tile column {block_col} outside {} columns",
            self.block_cols
        );
        assert_eq!(out.len(), self.shape.cols, "one slot per tile column");
        let lo = block_col * self.shape.cols;
        let hi = (lo + self.shape.cols).min(self.in_dim);
        out[..hi - lo].copy_from_slice(&input[lo..hi]);
        for v in &mut out[hi - lo..] {
            *v = 0.0;
        }
    }

    /// Splits a whole batch into its per-tile-column slices in one pass,
    /// tile-column-major: tile column `bc` of a `samples`-row batch
    /// occupies rows `bc·samples .. (bc+1)·samples` of `splits`, each
    /// `shape.cols` wide — the layout the executor's tile loop reads as
    /// contiguous zero-copy windows. The batched form of
    /// [`TiledMatrix::split_column_into`]: bounds are checked once per
    /// batch instead of once per (sample, tile-column) pair, and the
    /// destination arena is resized without zero-filling (every row is
    /// fully overwritten, padding included).
    ///
    /// # Panics
    ///
    /// Panics if any input's length is not `in_dim`.
    pub fn split_columns_into(&self, inputs: &[&[f64]], splits: &mut FlatBatch) {
        for (s, x) in inputs.iter().enumerate() {
            assert_eq!(
                x.len(),
                self.in_dim,
                "input {s}: one value per matrix column"
            );
        }
        let samples = inputs.len();
        splits.reset_for_overwrite(self.block_cols * samples, self.shape.cols);
        for bc in 0..self.block_cols {
            let lo = bc * self.shape.cols;
            let hi = (lo + self.shape.cols).min(self.in_dim);
            for (s, x) in inputs.iter().enumerate() {
                let row = splits.row_mut(bc * samples + s);
                row[..hi - lo].copy_from_slice(&x[lo..hi]);
                row[hi - lo..].fill(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(out: usize, inp: usize) -> Vec<Vec<u32>> {
        (0..out)
            .map(|r| (0..inp).map(|c| ((r * 3 + c) % 8) as u32).collect())
            .collect()
    }

    #[test]
    fn exact_grid_has_no_padding() {
        let m = TiledMatrix::from_codes(&codes(32, 32), 3, TileShape::new(16, 16));
        assert_eq!((m.block_rows(), m.block_cols()), (2, 2));
        assert_eq!(m.tile_count(), 4);
        let t = m.tile(1, 1);
        assert_eq!(t.codes()[0][0], codes(32, 32)[16][16]);
        assert_eq!(t.key().matrix, m.id());
    }

    #[test]
    fn ragged_grid_zero_pads() {
        let m = TiledMatrix::from_codes(&codes(17, 20), 3, TileShape::new(16, 16));
        assert_eq!((m.block_rows(), m.block_cols()), (2, 2));
        // Bottom-right tile: only (0..1, 0..4) are real.
        let t = m.tile(1, 1);
        assert_eq!(t.codes()[0][3], codes(17, 20)[16][19]);
        assert_eq!(t.codes()[0][4], 0, "padded column");
        assert_eq!(t.codes()[1][0], 0, "padded row");
    }

    #[test]
    fn matrix_ids_are_unique() {
        let a = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(16, 16));
        let b = TiledMatrix::from_codes(&codes(4, 4), 3, TileShape::new(16, 16));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn split_input_pads_the_tail() {
        let m = TiledMatrix::from_codes(&codes(16, 20), 3, TileShape::new(16, 16));
        let x: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let parts = m.split_input(&x);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], x[..16].to_vec());
        assert_eq!(parts[1][..4], x[16..]);
        assert!(parts[1][4..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn split_column_into_matches_split_input() {
        let m = TiledMatrix::from_codes(&codes(16, 20), 3, TileShape::new(16, 16));
        let x: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let parts = m.split_input(&x);
        // Pre-soiled scratch must be fully overwritten, padding included.
        let mut out = vec![f64::NAN; 16];
        for (bc, part) in parts.iter().enumerate() {
            m.split_column_into(&x, bc, &mut out);
            assert_eq!(&out, part, "tile column {bc}");
        }
    }

    #[test]
    fn split_columns_into_matches_per_column_splits() {
        let m = TiledMatrix::from_codes(&codes(16, 20), 3, TileShape::new(16, 16));
        let batch: Vec<Vec<f64>> = (0..3)
            .map(|s| (0..20).map(|c| ((s * 20 + c) % 13) as f64 / 13.0).collect())
            .collect();
        let slices: Vec<&[f64]> = batch.iter().map(Vec::as_slice).collect();
        // Pre-soil the scratch: the overwrite reset keeps stale contents,
        // so every row (ragged padding included) must be rewritten.
        let mut splits = FlatBatch::new();
        splits.reset(m.block_cols() * batch.len(), 16);
        for s in 0..splits.samples() {
            splits.row_mut(s).fill(f64::NAN);
        }
        m.split_columns_into(&slices, &mut splits);
        for bc in 0..m.block_cols() {
            for (s, x) in batch.iter().enumerate() {
                let mut want = vec![0.0; 16];
                m.split_column_into(x, bc, &mut want);
                assert_eq!(
                    splits.row(bc * batch.len() + s),
                    want.as_slice(),
                    "tile column {bc}, sample {s}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one value per matrix column")]
    fn split_columns_into_rejects_wrong_length() {
        let m = TiledMatrix::from_codes(&codes(16, 20), 3, TileShape::new(16, 16));
        let short = vec![0.5; 19];
        let mut splits = FlatBatch::new();
        m.split_columns_into(&[&short], &mut splits);
    }

    #[test]
    fn from_weights_quantises() {
        let w = vec![vec![0.0, 1.0, 0.5, 0.25]; 2];
        let m = TiledMatrix::from_weights(&w, 3, TileShape::new(4, 4));
        assert_eq!(m.tile(0, 0).codes()[0], vec![0, 7, 4, 2]);
    }

    #[test]
    fn shard_reuses_parent_codes_under_new_id() {
        let m = TiledMatrix::from_codes(&codes(33, 40), 3, TileShape::new(16, 16));
        assert_eq!((m.block_rows(), m.block_cols()), (3, 3));
        let s = m.shard(1..3, 0..3);
        assert_ne!(s.id(), m.id());
        assert_eq!((s.block_rows(), s.block_cols()), (2, 3));
        // Real extents: parent rows 16..33 → 17 rows (ragged last kept).
        assert_eq!(s.out_dim(), 17);
        assert_eq!(s.in_dim(), 40);
        for br in 0..2 {
            for bc in 0..3 {
                let t = s.tile(br, bc);
                assert_eq!(t.codes(), m.tile(br + 1, bc).codes());
                assert_eq!(
                    t.key(),
                    TileKey {
                        matrix: s.id(),
                        block_row: br,
                        block_col: bc
                    }
                );
            }
        }
    }

    #[test]
    fn shard_of_full_grid_matches_parent_dims() {
        let m = TiledMatrix::from_codes(&codes(17, 20), 3, TileShape::new(16, 16));
        let s = m.shard(0..m.block_rows(), 0..m.block_cols());
        assert_eq!((s.out_dim(), s.in_dim()), (m.out_dim(), m.in_dim()));
        assert_eq!(s.tile_count(), m.tile_count());
    }

    #[test]
    fn shard_column_window_trims_in_dim() {
        let m = TiledMatrix::from_codes(&codes(16, 36), 3, TileShape::new(16, 16));
        let s = m.shard(0..1, 1..3);
        // Parent cols 16..36 → 20 real inputs in the window.
        assert_eq!(s.in_dim(), 20);
        assert_eq!(s.tile(0, 0).codes(), m.tile(0, 1).codes());
        assert_eq!(s.tile(0, 1).codes(), m.tile(0, 2).codes());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn shard_rejects_out_of_grid_ranges() {
        let m = TiledMatrix::from_codes(&codes(16, 16), 3, TileShape::new(16, 16));
        let _ = m.shard(0..2, 0..1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_oversized_codes() {
        let _ = TiledMatrix::from_codes(&[vec![9u32; 4]], 3, TileShape::new(4, 4));
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn rejects_ragged_matrices() {
        let _ = TiledMatrix::from_codes(&[vec![1, 2], vec![3]], 3, TileShape::new(4, 4));
    }
}
