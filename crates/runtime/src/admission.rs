//! Residency-aware admission: indexed pending queues and pluggable
//! dispatch-order policies.
//!
//! The dispatcher used to hold one flat `VecDeque` and scan it per batch
//! (O(n) per batch, O(n²) per drain). This module replaces that with a
//! [`PendingQueues`] structure indexed by matrix id — batch formation is
//! an O(batch) pop from one group's deque — and an [`AdmissionPolicy`]
//! trait that decides *which* group dispatches next:
//!
//! * [`Fifo`] — strict arrival order (the pre-policy behaviour, kept as
//!   the comparison baseline);
//! * [`ResidencyAware`] — reorders groups within per-request deadline
//!   slack to lengthen same-matrix runs on the worker whose device
//!   already holds the tile, with a hard starvation bound (no group
//!   waits more than `max_delay` past its arrival-order turn);
//! * [`EarliestDeadlineFirst`] — classic EDF over each group's earliest
//!   pending deadline.
//!
//! Every policy sees the same [`GroupView`] summaries (sorted oldest
//! head first) and the same [`DispatchContext`] (worker backlogs and the
//! matrix→worker affinity map), so policies stay interchangeable and the
//! per-request *results* are identical by construction — only order,
//! latency, and tile-write energy differ.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// What the pending index needs to know about a queued item.
pub trait PendingItem {
    /// The id of the (pre-tiled) matrix the item runs against.
    fn matrix_id(&self) -> u64;
    /// The item's absolute deadline, if it carries one.
    fn deadline(&self) -> Option<Instant>;
    /// When the item entered the runtime.
    fn submitted_at(&self) -> Instant;
}

/// One same-matrix pending group: items in arrival order plus a
/// monotone min-deque over their deadlines (sliding-window minimum), so
/// the group's earliest deadline is O(1) to read and O(1) amortised to
/// maintain across pushes and front pops.
#[derive(Debug)]
struct Group<T> {
    items: VecDeque<(u64, T)>,
    /// `(seq, deadline)` pairs with strictly increasing deadline; the
    /// front is the earliest deadline among current items.
    deadline_min: VecDeque<(u64, Instant)>,
}

impl<T: PendingItem> Group<T> {
    fn new() -> Self {
        Group {
            items: VecDeque::new(),
            deadline_min: VecDeque::new(),
        }
    }

    fn push(&mut self, seq: u64, item: T) {
        if let Some(d) = item.deadline() {
            while self.deadline_min.back().is_some_and(|&(_, back)| back >= d) {
                self.deadline_min.pop_back();
            }
            self.deadline_min.push_back((seq, d));
        }
        self.items.push_back((seq, item));
    }

    fn pop(&mut self) -> Option<T> {
        let (seq, item) = self.items.pop_front()?;
        if self
            .deadline_min
            .front()
            .is_some_and(|&(front_seq, _)| front_seq <= seq)
        {
            self.deadline_min.pop_front();
        }
        Some(item)
    }
}

/// Pending submissions indexed by matrix id.
///
/// Push is O(1) amortised; [`PendingQueues::take`] of a batch is
/// O(batch); [`PendingQueues::views`] is O(groups · log groups) — a
/// function of how many *distinct matrices* are pending, not how many
/// requests.
#[derive(Debug)]
pub struct PendingQueues<T> {
    groups: HashMap<u64, Group<T>>,
    next_seq: u64,
    len: usize,
}

impl<T: PendingItem> Default for PendingQueues<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: PendingItem> PendingQueues<T> {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        PendingQueues {
            groups: HashMap::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Total pending items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distinct matrices with pending items.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Appends an item to its matrix's group (assigning the next global
    /// arrival sequence number).
    pub fn push(&mut self, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.groups
            .entry(item.matrix_id())
            .or_insert_with(Group::new)
            .push(seq, item);
        self.len += 1;
    }

    /// Per-group summaries sorted by the arrival order of each group's
    /// oldest item — `views()[0]` is always the group whose turn it is
    /// under strict FIFO.
    #[must_use]
    pub fn views(&self) -> Vec<GroupView> {
        let mut views: Vec<GroupView> = self
            .groups
            .iter()
            .map(|(&matrix_id, g)| {
                let &(head_seq, ref head) = g.items.front().expect("groups are never empty");
                GroupView {
                    matrix_id,
                    head_seq,
                    len: g.items.len(),
                    oldest_submitted_at: head.submitted_at(),
                    earliest_deadline: g.deadline_min.front().map(|&(_, d)| d),
                }
            })
            .collect();
        views.sort_by_key(|v| v.head_seq);
        views
    }

    /// Pops up to `max` items from the front of `matrix_id`'s group, in
    /// arrival order. Returns an empty vec for an unknown matrix.
    pub fn take(&mut self, matrix_id: u64, max: usize) -> Vec<T> {
        let Some(group) = self.groups.get_mut(&matrix_id) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(max.min(group.items.len()));
        while out.len() < max {
            match group.pop() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        if group.items.is_empty() {
            self.groups.remove(&matrix_id);
        }
        self.len -= out.len();
        out
    }
}

/// A policy's summary of one pending same-matrix group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupView {
    /// The group's matrix id.
    pub matrix_id: u64,
    /// Global arrival sequence of the group's oldest item (lower =
    /// earlier turn).
    pub head_seq: u64,
    /// Items pending in the group.
    pub len: usize,
    /// When the group's oldest item was submitted.
    pub oldest_submitted_at: Instant,
    /// Earliest deadline among the group's items, if any carry one.
    pub earliest_deadline: Option<Instant>,
}

/// Scheduler state a policy may consult when picking the next group.
#[derive(Debug)]
pub struct DispatchContext<'a> {
    /// Requests outstanding per worker (queued + executing).
    pub worker_backlog: &'a [usize],
    /// matrix id → worker that last served it (sticky affinity).
    pub affinity: &'a HashMap<u64, usize>,
    /// Backlog beyond which an affine worker counts as congested and its
    /// residency is not worth chasing.
    pub sticky_limit: usize,
    /// Matrix of the most recently dispatched batch, if any.
    pub last_dispatched: Option<u64>,
}

impl DispatchContext<'_> {
    /// Whether `matrix_id`'s tile is plausibly warm on an uncongested
    /// worker: it has a sticky worker whose backlog is within bounds.
    #[must_use]
    pub fn is_warm(&self, matrix_id: u64) -> bool {
        self.affinity
            .get(&matrix_id)
            .is_some_and(|&w| self.worker_backlog.get(w).copied().unwrap_or(0) <= self.sticky_limit)
    }
}

/// Decides which pending group the dispatcher serves next.
///
/// `views` is non-empty and sorted oldest head first; the return value
/// indexes into it. Policies may keep internal state (`&mut self`) —
/// e.g. the [`ResidencyAware`] starvation clock.
pub trait AdmissionPolicy: Send {
    /// The policy's stable label (used in metrics and benchmark JSON).
    fn name(&self) -> &'static str;

    /// Picks the index of the group to dispatch next.
    fn select(&mut self, views: &[GroupView], ctx: &DispatchContext<'_>, now: Instant) -> usize;
}

/// Strict arrival order — the pre-policy dispatcher behaviour.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(&mut self, _views: &[GroupView], _ctx: &DispatchContext<'_>, _now: Instant) -> usize {
        0
    }
}

/// Classic earliest-deadline-first over each group's earliest pending
/// deadline; groups without deadlines rank after all deadlined groups,
/// in arrival order. (Deadline-free groups can therefore wait under
/// sustained deadline pressure — that is EDF's contract; use
/// [`ResidencyAware`] when fairness matters.)
#[derive(Debug, Default, Clone, Copy)]
pub struct EarliestDeadlineFirst;

impl AdmissionPolicy for EarliestDeadlineFirst {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn select(&mut self, views: &[GroupView], _ctx: &DispatchContext<'_>, now: Instant) -> usize {
        views
            .iter()
            .enumerate()
            .min_by_key(|(_, v)| match v.earliest_deadline {
                // `None < Some` for Options, so rank explicitly: all
                // deadlined groups (by deadline) before deadline-free
                // ones (by arrival).
                Some(d) => (0u8, d, v.head_seq),
                None => (1u8, now, v.head_seq),
            })
            .map_or(0, |(i, _)| i)
    }
}

/// Reorders pending groups — within deadline slack — to lengthen
/// same-matrix runs on workers that already hold the tile.
///
/// Selection order:
///
/// 1. **Starvation bound**: if the arrival-order front group has been
///    the front for longer than `max_delay`, it dispatches now. A group
///    is therefore delayed at most `max_delay` past its strict-FIFO
///    turn, whatever the traffic looks like.
/// 2. **Deadline urgency**: any group whose earliest deadline is within
///    `max_delay` of `now` is at risk (a skipped group can wait up to
///    `max_delay`); the most urgent such group dispatches.
/// 3. **Run lengthening**: if the matrix just dispatched still has
///    pending work and its sticky worker is uncongested, keep the run
///    going — every extra batch in the run is a write-free pass.
/// 4. **Warm start**: otherwise the oldest group whose matrix is warm on
///    an uncongested worker.
/// 5. Otherwise strict FIFO.
#[derive(Debug)]
pub struct ResidencyAware {
    max_delay: Duration,
    /// `(head_seq, since)` of the group observed at the arrival-order
    /// front — the starvation clock. Reset whenever the front changes.
    front_watch: Option<(u64, Instant)>,
}

impl ResidencyAware {
    /// A policy that reorders within `max_delay` of slack.
    #[must_use]
    pub fn new(max_delay: Duration) -> Self {
        ResidencyAware {
            max_delay,
            front_watch: None,
        }
    }

    /// The configured starvation bound.
    #[must_use]
    pub fn max_delay(&self) -> Duration {
        self.max_delay
    }
}

impl AdmissionPolicy for ResidencyAware {
    fn name(&self) -> &'static str {
        "residency"
    }

    fn select(&mut self, views: &[GroupView], ctx: &DispatchContext<'_>, now: Instant) -> usize {
        let front = &views[0];
        // Advance the starvation clock: it measures how long this group
        // has been the arrival-order front (its "turn"), not how long it
        // has existed — under load every request queues; only being
        // *passed over* counts as starvation.
        let since = match self.front_watch {
            Some((seq, since)) if seq == front.head_seq => since,
            _ => {
                self.front_watch = Some((front.head_seq, now));
                now
            }
        };
        if now.duration_since(since) >= self.max_delay {
            return 0;
        }

        // Deadline urgency: a group we skip can wait up to `max_delay`,
        // so anything due within that horizon must not be skipped.
        let horizon = now + self.max_delay;
        if let Some((i, _)) = views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.earliest_deadline.is_some_and(|d| d <= horizon))
            .min_by_key(|(_, v)| (v.earliest_deadline, v.head_seq))
        {
            return i;
        }

        // Run lengthening: same matrix as the previous batch.
        if let Some(last) = ctx.last_dispatched {
            if ctx.is_warm(last) {
                if let Some(i) = views.iter().position(|v| v.matrix_id == last) {
                    return i;
                }
            }
        }

        // Warm start: oldest group with a warm, uncongested worker.
        views
            .iter()
            .position(|v| ctx.is_warm(v.matrix_id))
            .unwrap_or(0)
    }
}

/// Which [`AdmissionPolicy`] a [`Runtime`](crate::Runtime) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicyKind {
    /// Strict arrival order (baseline).
    Fifo,
    /// Residency-aware reordering within deadline slack.
    ResidencyAware,
    /// Earliest deadline first.
    EarliestDeadlineFirst,
}

impl AdmissionPolicyKind {
    /// All kinds, in baseline-first order (handy for comparison sweeps).
    pub const ALL: [AdmissionPolicyKind; 3] = [
        AdmissionPolicyKind::Fifo,
        AdmissionPolicyKind::ResidencyAware,
        AdmissionPolicyKind::EarliestDeadlineFirst,
    ];

    /// The kind's stable label (matches the policy's
    /// [`AdmissionPolicy::name`]).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicyKind::Fifo => "fifo",
            AdmissionPolicyKind::ResidencyAware => "residency",
            AdmissionPolicyKind::EarliestDeadlineFirst => "edf",
        }
    }

    /// Parses a label as produced by [`AdmissionPolicyKind::label`].
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "fifo" => Some(AdmissionPolicyKind::Fifo),
            "residency" => Some(AdmissionPolicyKind::ResidencyAware),
            "edf" => Some(AdmissionPolicyKind::EarliestDeadlineFirst),
            _ => None,
        }
    }

    /// Instantiates the policy. `max_delay` bounds [`ResidencyAware`]'s
    /// reordering; the other policies ignore it.
    #[must_use]
    pub fn build(&self, max_delay: Duration) -> Box<dyn AdmissionPolicy> {
        match self {
            AdmissionPolicyKind::Fifo => Box::new(Fifo),
            AdmissionPolicyKind::ResidencyAware => Box::new(ResidencyAware::new(max_delay)),
            AdmissionPolicyKind::EarliestDeadlineFirst => Box::new(EarliestDeadlineFirst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bare test item.
    #[derive(Debug, Clone)]
    struct Item {
        matrix: u64,
        deadline: Option<Instant>,
        at: Instant,
    }

    impl PendingItem for Item {
        fn matrix_id(&self) -> u64 {
            self.matrix
        }
        fn deadline(&self) -> Option<Instant> {
            self.deadline
        }
        fn submitted_at(&self) -> Instant {
            self.at
        }
    }

    fn item(matrix: u64) -> Item {
        Item {
            matrix,
            deadline: None,
            at: Instant::now(),
        }
    }

    fn with_deadline(matrix: u64, d: Instant) -> Item {
        Item {
            matrix,
            deadline: Some(d),
            at: Instant::now(),
        }
    }

    #[test]
    fn pending_queues_index_and_take_in_arrival_order() {
        let mut q = PendingQueues::new();
        for m in [7u64, 3, 7, 7, 3, 9] {
            q.push(item(m));
        }
        assert_eq!((q.len(), q.group_count()), (6, 3));
        let views = q.views();
        assert_eq!(
            views.iter().map(|v| v.matrix_id).collect::<Vec<_>>(),
            vec![7, 3, 9],
            "views sort by oldest head"
        );
        assert_eq!(views[0].len, 3);
        let batch = q.take(7, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!((q.len(), q.group_count()), (4, 3));
        // Taking the rest removes the group entirely.
        assert_eq!(q.take(7, 10).len(), 1);
        assert_eq!(q.group_count(), 2);
        assert!(q.take(7, 1).is_empty(), "drained group yields nothing");
        assert_eq!(q.views()[0].matrix_id, 3, "next-oldest head leads");
    }

    #[test]
    fn earliest_deadline_tracks_pushes_and_pops() {
        let now = Instant::now();
        let mut q = PendingQueues::new();
        q.push(with_deadline(1, now + Duration::from_secs(9)));
        q.push(with_deadline(1, now + Duration::from_secs(2)));
        q.push(with_deadline(1, now + Duration::from_secs(5)));
        assert_eq!(
            q.views()[0].earliest_deadline,
            Some(now + Duration::from_secs(2))
        );
        // Popping the 9 s head keeps the 2 s minimum; popping the 2 s
        // item advances the minimum to 5 s.
        let _ = q.take(1, 1);
        assert_eq!(
            q.views()[0].earliest_deadline,
            Some(now + Duration::from_secs(2))
        );
        let _ = q.take(1, 1);
        assert_eq!(
            q.views()[0].earliest_deadline,
            Some(now + Duration::from_secs(5))
        );
    }

    #[test]
    fn fifo_always_picks_the_front() {
        let mut q = PendingQueues::new();
        q.push(item(1));
        q.push(item(2));
        let affinity = HashMap::from([(2u64, 0usize)]);
        let ctx = DispatchContext {
            worker_backlog: &[0],
            affinity: &affinity,
            sticky_limit: 8,
            last_dispatched: Some(2),
        };
        assert_eq!(Fifo.select(&q.views(), &ctx, Instant::now()), 0);
    }

    #[test]
    fn edf_orders_by_deadline_then_arrival() {
        let now = Instant::now();
        let mut q = PendingQueues::new();
        q.push(item(1)); // no deadline
        q.push(with_deadline(2, now + Duration::from_secs(9)));
        q.push(with_deadline(3, now + Duration::from_secs(1)));
        let affinity = HashMap::new();
        let ctx = DispatchContext {
            worker_backlog: &[0],
            affinity: &affinity,
            sticky_limit: 8,
            last_dispatched: None,
        };
        let views = q.views();
        let picked = EarliestDeadlineFirst.select(&views, &ctx, now);
        assert_eq!(views[picked].matrix_id, 3, "tightest deadline first");
    }

    #[test]
    fn residency_lengthens_runs_and_respects_the_starvation_bound() {
        let now = Instant::now();
        let mut q = PendingQueues::new();
        q.push(item(1));
        q.push(item(2));
        let affinity = HashMap::from([(2u64, 0usize)]);
        let ctx = DispatchContext {
            worker_backlog: &[0],
            affinity: &affinity,
            sticky_limit: 8,
            last_dispatched: Some(2),
        };
        let mut policy = ResidencyAware::new(Duration::from_millis(100));
        let views = q.views();
        // Warm matrix 2 jumps the queue while matrix 1 is within bound…
        assert_eq!(views[policy.select(&views, &ctx, now)].matrix_id, 2);
        // …but once matrix 1 has been the front past max_delay, it wins.
        let later = now + Duration::from_millis(150);
        assert_eq!(views[policy.select(&views, &ctx, later)].matrix_id, 1);
    }

    #[test]
    fn residency_serves_urgent_deadlines_before_warm_matrices() {
        let now = Instant::now();
        let mut q = PendingQueues::new();
        q.push(item(1));
        q.push(with_deadline(3, now + Duration::from_millis(50)));
        q.push(item(2));
        let affinity = HashMap::from([(2u64, 0usize)]);
        let ctx = DispatchContext {
            worker_backlog: &[0],
            affinity: &affinity,
            sticky_limit: 8,
            last_dispatched: Some(2),
        };
        let mut policy = ResidencyAware::new(Duration::from_millis(100));
        let views = q.views();
        let picked = policy.select(&views, &ctx, now);
        assert_eq!(
            views[picked].matrix_id, 3,
            "urgent deadline outranks warmth"
        );
    }

    #[test]
    fn kind_round_trips_labels_and_builds() {
        for kind in AdmissionPolicyKind::ALL {
            assert_eq!(AdmissionPolicyKind::parse(kind.label()), Some(kind));
            let policy = kind.build(Duration::from_millis(10));
            assert_eq!(policy.name(), kind.label());
        }
        assert_eq!(AdmissionPolicyKind::parse("nope"), None);
    }
}
