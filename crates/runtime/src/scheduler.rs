//! The concurrent serving runtime: intake queue, dynamic batcher,
//! worker threads over a shared device pool.
//!
//! ```text
//! submit() ──▶ bounded intake ──▶ dispatcher ──▶ bounded worker queues
//!                (backpressure)     (groups same-matrix requests,
//!                                    routes to least-loaded worker)
//!                                        │
//!                                        ▼
//!                              worker: DevicePool::acquire_for
//!                                 (residency-affine checkout)
//!                                        │
//!                                        ▼
//!                              TileExecutor::execute ──▶ ResponseHandle
//! ```
//!
//! Everything is std threads and `mpsc` channels — no async runtime, no
//! external dependencies. Queues are bounded end to end, so overload
//! surfaces as a typed [`RuntimeError::QueueFull`] at the edge instead
//! of unbounded memory growth; deadlines are enforced at dispatch time
//! with [`RuntimeError::DeadlineExpired`]; dropping the [`Runtime`]
//! drains in-flight work and joins every thread.

use crate::admission::{AdmissionPolicyKind, DispatchContext, PendingItem, PendingQueues};
use crate::metrics::MetricsRegistry;
use crate::pool::DevicePool;
use crate::request::{MatmulRequest, RequestCost, Response, RuntimeError};
use pic_obs::{EventKind, Frame, SnapshotSink, Stage, StageTimer};
use pic_tensor::performance::PerformanceModel;
use pic_tensor::TensorCoreConfig;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A worker that waited idle at least this long records a
/// [`EventKind::WorkerStall`] in the flight recorder.
const STALL_EVENT_THRESHOLD: Duration = Duration::from_millis(1);

/// Sizing of a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// The device architecture every pool member is built from.
    pub core: TensorCoreConfig,
    /// Devices in the pool (= worker threads).
    pub devices: usize,
    /// Bound of the intake queue; beyond it [`Runtime::submit`] returns
    /// [`RuntimeError::QueueFull`].
    pub queue_depth: usize,
    /// Most requests merged into one device pass (same matrix only).
    pub max_batch: usize,
    /// Bound of each worker's queue; keeps the dispatcher from running
    /// far ahead of slow devices.
    pub worker_queue_depth: usize,
    /// Which admission policy orders pending groups at dispatch.
    pub policy: AdmissionPolicyKind,
    /// The [`ResidencyAware`](crate::admission::ResidencyAware) policy's
    /// starvation bound: no pending group is delayed more than this past
    /// its strict-FIFO turn, and deadlines within this horizon are never
    /// reordered behind warm traffic. Ignored by the other policies.
    pub max_delay: Duration,
}

impl RuntimeConfig {
    /// The evaluation setup: four paper-scale cores, a 1024-deep intake
    /// queue, batches of up to 8 same-matrix requests, residency-aware
    /// admission bounded at 400 ms of reordering slack.
    #[must_use]
    pub fn paper() -> Self {
        RuntimeConfig {
            core: TensorCoreConfig::paper(),
            devices: 4,
            queue_depth: 1024,
            max_batch: 8,
            worker_queue_depth: 2,
            policy: AdmissionPolicyKind::ResidencyAware,
            max_delay: Duration::from_millis(400),
        }
    }

    /// The same sizing with a different admission policy.
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Validates the sizing.
    ///
    /// # Panics
    ///
    /// Panics if any bound is zero or the core configuration is invalid.
    pub fn validate(&self) {
        self.core.validate();
        assert!(self.devices > 0, "runtime needs at least one device");
        assert!(self.queue_depth > 0, "intake queue must have capacity");
        assert!(self.max_batch > 0, "batches hold at least one request");
        assert!(self.worker_queue_depth > 0, "worker queues need capacity");
        assert!(
            self.max_delay > Duration::ZERO,
            "a zero starvation bound degenerates to FIFO; configure Fifo instead"
        );
    }
}

/// Notified when a waker-tagged submission reaches a terminal state.
///
/// Non-blocking submitters (the `pic-net` epoll reactor) register one
/// of these with [`Runtime::submit_with_waker`] instead of parking a
/// thread on [`ResponseHandle::wait`]: when the runtime finishes with
/// the request — response sent, rejection sent, or the submission
/// dropped without either (a [`Runtime::kill`]) — `wake(token)` fires
/// exactly once, after which [`ResponseHandle::try_wait`] on the
/// paired handle is guaranteed to return `Some`.
pub trait CompletionWaker: Send + Sync + 'static {
    /// Called once per woken submission, from whichever runtime thread
    /// finished it. Must not block.
    fn wake(&self, token: u64);
}

/// Fires its waker on drop. Declared as the *last* field of
/// [`Submission`], after `respond`: Rust drops fields in declaration
/// order, so by the time the wake fires the response channel has
/// already delivered (sender kept alive while the buffered value was
/// stored) or disconnected — either way the paired handle's
/// `try_wait` observes a terminal state, never `None`.
struct WakeGuard {
    waker: Option<Arc<dyn CompletionWaker>>,
    token: u64,
}

impl WakeGuard {
    /// Disarms the guard for synchronous-rejection paths (queue full,
    /// shutdown race) where the submitter already holds the error and
    /// a wake would be a stale token.
    fn defuse(mut self) {
        self.waker = None;
    }
}

impl Drop for WakeGuard {
    fn drop(&mut self) {
        if let Some(waker) = self.waker.take() {
            waker.wake(self.token);
        }
    }
}

impl std::fmt::Debug for WakeGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeGuard")
            .field("token", &self.token)
            .finish()
    }
}

/// One accepted request travelling through the runtime.
struct Submission {
    request: MatmulRequest,
    respond: SyncSender<Result<Response, RuntimeError>>,
    submitted_at: Instant,
    /// Open "queue" span of a traced request (closed at batch
    /// formation).
    trace_queue: Option<u32>,
    /// Keep last: must drop after `respond` (see [`WakeGuard`]).
    wake: Option<WakeGuard>,
}

impl PendingItem for Submission {
    fn matrix_id(&self) -> u64 {
        self.request.matrix.id()
    }

    fn deadline(&self) -> Option<Instant> {
        self.request.deadline
    }

    fn submitted_at(&self) -> Instant {
        self.submitted_at
    }
}

/// A same-matrix group of submissions bound for one worker.
struct Batch {
    group: Vec<Submission>,
}

/// Waits for one request's response.
///
/// ## Terminal semantics
///
/// A handle is *terminal* once it has yielded its single response (or
/// reported the runtime gone). Terminal handles are deterministic:
/// every further [`ResponseHandle::try_wait`] /
/// [`ResponseHandle::wait_timeout`] call returns
/// `Some(Err(WorkerLost))` immediately — it never blocks on a channel
/// that can no longer produce anything, and never panics. This holds
/// both after the response was consumed and after the runtime dropped
/// the request (the two cases are indistinguishable to the caller, and
/// both mean "nothing more will ever arrive here").
#[derive(Debug)]
pub struct ResponseHandle {
    rx: std::sync::mpsc::Receiver<Result<Response, RuntimeError>>,
    /// Set once the single response has been consumed (or the channel
    /// reported disconnected): the handle is terminal from then on.
    terminal: Cell<bool>,
}

impl ResponseHandle {
    fn new(rx: std::sync::mpsc::Receiver<Result<Response, RuntimeError>>) -> Self {
        ResponseHandle {
            rx,
            terminal: Cell::new(false),
        }
    }

    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// The request's typed rejection, or [`RuntimeError::WorkerLost`] if
    /// the runtime dropped the request without responding.
    pub fn wait(self) -> Result<Response, RuntimeError> {
        if self.terminal.get() {
            return Err(RuntimeError::WorkerLost);
        }
        self.rx.recv().map_err(|_| RuntimeError::WorkerLost)?
    }

    /// Returns the response if it already arrived, `None` otherwise.
    /// On a terminal handle (see the type docs) this returns
    /// `Some(Err(WorkerLost))` immediately.
    ///
    /// # Errors
    ///
    /// Like [`ResponseHandle::wait`] once the response is in.
    pub fn try_wait(&self) -> Option<Result<Response, RuntimeError>> {
        if self.terminal.get() {
            return Some(Err(RuntimeError::WorkerLost));
        }
        match self.rx.try_recv() {
            Ok(result) => {
                self.terminal.set(true);
                Some(result)
            }
            Err(std::sync::mpsc::TryRecvError::Empty) => None,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                self.terminal.set(true);
                Some(Err(RuntimeError::WorkerLost))
            }
        }
    }

    /// Blocks up to `timeout` for the response; `None` if it has not
    /// arrived by then (the handle stays usable — no busy-spinning
    /// [`ResponseHandle::try_wait`] loops needed). On a terminal handle
    /// (see the type docs) this returns `Some(Err(WorkerLost))`
    /// immediately instead of blocking for the full timeout again.
    ///
    /// # Errors
    ///
    /// Like [`ResponseHandle::wait`] once the response is in.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, RuntimeError>> {
        if self.terminal.get() {
            return Some(Err(RuntimeError::WorkerLost));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(result) => {
                self.terminal.set(true);
                Some(result)
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                self.terminal.set(true);
                Some(Err(RuntimeError::WorkerLost))
            }
        }
    }
}

/// Tells the exporter thread to emit a final frame and exit.
#[derive(Debug, Default)]
struct ExporterStop {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// The serving runtime. See the [module docs](self) for the data path.
#[derive(Debug)]
pub struct Runtime {
    /// The intake sender, behind a lock so [`Runtime::drain`] can close
    /// it through `&self` (the network front-end shares the runtime
    /// across connection threads and needs to stop intake without
    /// exclusive ownership). Submit paths clone the sender under a read
    /// lock and release it before touching the channel, so drain never
    /// waits behind a blocked submitter.
    intake: RwLock<Option<SyncSender<Submission>>>,
    /// Crash-simulation flag (see [`Runtime::kill`]): when raised the
    /// dispatcher abandons accepted-but-undispatched work instead of
    /// draining it.
    killed: Arc<std::sync::atomic::AtomicBool>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    exporter: Option<std::thread::JoinHandle<()>>,
    exporter_stop: Arc<ExporterStop>,
    metrics: Arc<MetricsRegistry>,
    pool: Arc<DevicePool>,
    config: RuntimeConfig,
}

impl Runtime {
    /// Builds the device pool, spawns the dispatcher and one worker per
    /// device, and opens the intake queue.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or threads cannot spawn.
    #[must_use]
    pub fn start(config: RuntimeConfig) -> Self {
        config.validate();
        let metrics = Arc::new(MetricsRegistry::default());
        metrics
            .devices
            .store(config.devices as u64, Ordering::Relaxed);
        let pool = Arc::new(DevicePool::new(config.core, config.devices));
        let (intake_tx, intake_rx) = std::sync::mpsc::sync_channel(config.queue_depth);
        let killed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let dispatcher = {
            let metrics = Arc::clone(&metrics);
            let pool = Arc::clone(&pool);
            let killed = Arc::clone(&killed);
            std::thread::Builder::new()
                .name("pic-dispatcher".to_owned())
                .spawn(move || dispatcher_loop(&config, &intake_rx, &pool, &metrics, &killed))
                .expect("spawn dispatcher")
        };
        Runtime {
            intake: RwLock::new(Some(intake_tx)),
            killed,
            dispatcher: Some(dispatcher),
            exporter: None,
            exporter_stop: Arc::new(ExporterStop::default()),
            metrics,
            pool,
            config,
        }
    }

    /// Spawns the periodic snapshot exporter: every `interval` it hands
    /// the sink a cumulative [`Frame`] plus the windowed delta since the
    /// previous export, forwards the flight-recorder dump once when the
    /// incident latch trips (first deadline miss), and emits one final
    /// frame at shutdown. At most one exporter runs; a second call
    /// replaces the first.
    ///
    /// # Panics
    ///
    /// Panics if the exporter thread cannot spawn.
    pub fn spawn_exporter(&mut self, interval: Duration, sink: Arc<dyn SnapshotSink>) {
        self.stop_exporter();
        self.exporter_stop = Arc::new(ExporterStop::default());
        let stop = Arc::clone(&self.exporter_stop);
        let metrics = Arc::clone(&self.metrics);
        let pool = Arc::clone(&self.pool);
        self.exporter = Some(
            std::thread::Builder::new()
                .name("pic-exporter".to_owned())
                .spawn(move || exporter_loop(&stop, interval, &metrics, &pool, sink.as_ref()))
                .expect("spawn exporter"),
        );
    }

    /// The unified exposition frame: registry counters/gauges/stages
    /// plus pool-level device gauges. Render it with
    /// [`Frame::to_prometheus`] or [`Frame::to_json`].
    #[must_use]
    pub fn frame(&self) -> Frame {
        runtime_frame(&self.metrics, &self.pool)
    }

    fn stop_exporter(&mut self) {
        if let Some(exporter) = self.exporter.take() {
            *self.exporter_stop.stopped.lock().expect("exporter lock") = true;
            self.exporter_stop.wake.notify_all();
            exporter.join().expect("exporter exits cleanly");
        }
    }

    /// The runtime's sizing.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The shared device pool (for introspection).
    #[must_use]
    pub fn pool(&self) -> &DevicePool {
        &self.pool
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidRequest`] on validation failure,
    /// [`RuntimeError::DeadlineExpired`] when the deadline already
    /// passed (dead-on-arrival requests never occupy the intake queue,
    /// the admission index, or a batch slot),
    /// [`RuntimeError::QueueFull`] under backpressure,
    /// [`RuntimeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: MatmulRequest) -> Result<ResponseHandle, RuntimeError> {
        self.submit_inner(request, None)
    }

    /// Submits a request without blocking, tagging it with a
    /// [`CompletionWaker`] that fires `wake(token)` exactly once when
    /// the request reaches a terminal state — response ready, typed
    /// rejection sent, or the request abandoned ([`Runtime::kill`]).
    /// After the wake, [`ResponseHandle::try_wait`] on the returned
    /// handle is guaranteed to return `Some`.
    ///
    /// On `Err` the waker will *not* fire: a synchronous rejection is
    /// already in the caller's hands and a wake would be a stale token.
    ///
    /// # Errors
    ///
    /// Like [`Runtime::submit`].
    pub fn submit_with_waker(
        &self,
        request: MatmulRequest,
        token: u64,
        waker: Arc<dyn CompletionWaker>,
    ) -> Result<ResponseHandle, RuntimeError> {
        self.submit_inner(
            request,
            Some(WakeGuard {
                waker: Some(waker),
                token,
            }),
        )
    }

    fn submit_inner(
        &self,
        request: MatmulRequest,
        wake: Option<WakeGuard>,
    ) -> Result<ResponseHandle, RuntimeError> {
        let _timer = StageTimer::start(&self.metrics.stages, Stage::Submit);
        let (mut submission, handle) = match self.admit(request) {
            Ok(pair) => pair,
            Err(e) => {
                // Admission rejections are synchronous; never wake.
                if let Some(guard) = wake {
                    guard.defuse();
                }
                return Err(e);
            }
        };
        submission.wake = wake;
        let intake = match self.intake_sender() {
            Ok(intake) => intake,
            Err(e) => {
                if let Some(guard) = submission.wake.take() {
                    guard.defuse();
                }
                return Err(e);
            }
        };
        match intake.try_send(submission) {
            Ok(()) => {
                self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                self.metrics.intake_depth.fetch_add(1, Ordering::Relaxed);
                Ok(handle)
            }
            Err(TrySendError::Full(mut rejected)) => {
                if let Some(guard) = rejected.wake.take() {
                    guard.defuse();
                }
                self.metrics
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics.recorder.record(
                    EventKind::QueueFullRejected,
                    rejected.request.matrix.id(),
                    0,
                );
                Err(RuntimeError::QueueFull)
            }
            Err(TrySendError::Disconnected(mut rejected)) => {
                if let Some(guard) = rejected.wake.take() {
                    guard.defuse();
                }
                Err(RuntimeError::ShuttingDown)
            }
        }
    }

    /// Submits a request, blocking while the intake queue is full.
    ///
    /// # Errors
    ///
    /// Like [`Runtime::submit`], except backpressure blocks instead of
    /// returning [`RuntimeError::QueueFull`].
    pub fn submit_blocking(&self, request: MatmulRequest) -> Result<ResponseHandle, RuntimeError> {
        let _timer = StageTimer::start(&self.metrics.stages, Stage::Submit);
        let (submission, handle) = self.admit(request)?;
        let intake = self.intake_sender()?;
        intake
            .send(submission)
            .map_err(|_| RuntimeError::ShuttingDown)?;
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        self.metrics.intake_depth.fetch_add(1, Ordering::Relaxed);
        Ok(handle)
    }

    /// Clones the intake sender under the read lock (released before
    /// the channel is touched, so [`Runtime::drain`] never queues
    /// behind a blocked submitter).
    fn intake_sender(&self) -> Result<SyncSender<Submission>, RuntimeError> {
        self.intake
            .read()
            .expect("intake lock")
            .clone()
            .ok_or(RuntimeError::ShuttingDown)
    }

    /// Whether the runtime still accepts new work (`false` once
    /// [`Runtime::drain`] or [`Runtime::shutdown`] has run).
    #[must_use]
    pub fn is_accepting(&self) -> bool {
        self.intake.read().expect("intake lock").is_some()
    }

    /// Validates a request and pairs it with its response channel. A
    /// request whose deadline has already passed is rejected here —
    /// before it can occupy the intake queue, the admission index, or a
    /// batch slot — so dead-on-arrival work is never charged any
    /// admission effort.
    fn admit(&self, request: MatmulRequest) -> Result<(Submission, ResponseHandle), RuntimeError> {
        if let Some(deadline) = request.deadline {
            let now = Instant::now();
            if deadline <= now {
                self.metrics
                    .rejected_deadline
                    .fetch_add(1, Ordering::Relaxed);
                self.metrics.recorder.record(
                    EventKind::DeadlineExpired,
                    request.matrix.id(),
                    now.duration_since(deadline).as_nanos() as u64,
                );
                self.metrics.recorder.trip_incident();
                return Err(RuntimeError::DeadlineExpired);
            }
        }
        if let Err(e) = request.validate() {
            self.metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        // A traced request opens its "queue" span here, tagged with
        // the backlog it joined; the dispatcher closes it when the
        // request leaves the pending set for a batch.
        let trace_queue = request.trace.as_ref().and_then(|t| {
            let idx = t.collector.begin("queue", t.parent);
            let depth = self.metrics.intake_depth.load(Ordering::Relaxed)
                + self.metrics.pending_depth.load(Ordering::Relaxed);
            t.collector.set_queue_depth(idx, depth);
            idx
        });
        Ok((
            Submission {
                request,
                respond: tx,
                submitted_at: Instant::now(),
                trace_queue,
                wake: None,
            },
            ResponseHandle::new(rx),
        ))
    }

    /// Stops intake through `&self` without joining any thread: further
    /// submits fail with [`RuntimeError::ShuttingDown`] while the
    /// dispatcher keeps draining everything already accepted in the
    /// background. The network front-end uses this as its drain hook —
    /// stop the wire first, let in-flight work flush, then join via
    /// [`Runtime::shutdown`]. Idempotent.
    pub fn drain(&self) {
        *self.intake.write().expect("intake lock") = None;
    }

    /// Simulates an abrupt node crash: intake closes *and* the
    /// dispatcher abandons everything accepted but not yet handed to a
    /// worker — those requests' waiters surface
    /// [`RuntimeError::WorkerLost`], exactly what a caller of a real
    /// remote node would observe when it dies mid-flight. (Batches a
    /// worker already holds may still complete; a real crash has the
    /// same race.) Threads still join via [`Runtime::shutdown`].
    /// Idempotent.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Release);
        self.drain();
    }

    /// Stops intake, drains every queued request, and joins all threads
    /// (the exporter last, so its final frame sees the drained state).
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.drain();
        if let Some(dispatcher) = self.dispatcher.take() {
            dispatcher.join().expect("dispatcher exits cleanly");
        }
        self.stop_exporter();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Groups same-matrix submissions and routes them to the least-loaded
/// worker; drains everything already accepted before exiting.
fn dispatcher_loop(
    config: &RuntimeConfig,
    intake: &Receiver<Submission>,
    pool: &Arc<DevicePool>,
    metrics: &Arc<MetricsRegistry>,
    killed: &std::sync::atomic::AtomicBool,
) {
    // Digitisation's share of modeled compute energy, from the paper's
    // power breakdown — splits each batch's compute energy between the
    // analog-compute and digitise stages.
    let adc_fraction = {
        let breakdown = PerformanceModel::new(config.core).power_breakdown();
        breakdown.adc_w / breakdown.total_w()
    };
    let outstanding: Arc<Vec<AtomicUsize>> =
        Arc::new((0..config.devices).map(|_| AtomicUsize::new(0)).collect());
    let mut senders = Vec::with_capacity(config.devices);
    let mut workers = Vec::with_capacity(config.devices);
    for w in 0..config.devices {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Batch>(config.worker_queue_depth);
        senders.push(tx);
        let pool = Arc::clone(pool);
        let metrics = Arc::clone(metrics);
        let outstanding = Arc::clone(&outstanding);
        workers.push(
            std::thread::Builder::new()
                .name(format!("pic-worker-{w}"))
                .spawn(move || {
                    // Spans opened anywhere below this worker (executor
                    // merge, tensor compute/digitise kernels) record into
                    // the registry's stage table.
                    pic_obs::install_collector(Some(Arc::clone(&metrics.stages)));
                    loop {
                        let idle_from = Instant::now();
                        let Ok(batch) = rx.recv() else { break };
                        let stalled = idle_from.elapsed();
                        if stalled >= STALL_EVENT_THRESHOLD {
                            metrics.recorder.record(
                                EventKind::WorkerStall,
                                w as u64,
                                stalled.as_nanos() as u64,
                            );
                        }
                        let size = batch.group.len();
                        metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
                        let busy_from = Instant::now();
                        process_batch(batch, &pool, &metrics, adc_fraction);
                        metrics
                            .worker_busy_ns
                            .fetch_add(busy_from.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
                        outstanding[w].fetch_sub(size, Ordering::Relaxed);
                    }
                    pic_obs::install_collector(None);
                })
                .expect("spawn worker"),
        );
    }

    // Sticky matrix→worker affinity: keep routing a matrix to the worker
    // that last served it (whose device likely still holds its tile), and
    // fall back to the least-loaded worker only when the sticky one has a
    // real backlog. Combined with the pool's residency-affine checkout
    // this is what turns repeat traffic into write-free passes.
    let mut affinity: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut sticky_count = vec![0usize; config.devices];
    let sticky_limit = 2 * config.max_batch;
    // Pending work lives in per-matrix indexed queues; the configured
    // admission policy picks which group dispatches next, and forming a
    // batch is an O(batch) pop from that group — never a scan over the
    // whole backlog.
    let mut policy = config.policy.build(config.max_delay);
    let mut pending: PendingQueues<Submission> = PendingQueues::new();
    let mut last_dispatched: Option<u64> = None;
    let mut pending_count: u64 = 0;
    let mut open = true;
    while open || !pending.is_empty() {
        // Crash simulation ([`Runtime::kill`]): abandon the intake
        // backlog and every pending submission — dropping their
        // responders surfaces `WorkerLost` to the waiters.
        if killed.load(Ordering::Acquire) {
            while intake.try_recv().is_ok() {}
            metrics.intake_depth.store(0, Ordering::Relaxed);
            metrics.pending_depth.store(0, Ordering::Relaxed);
            break;
        }
        if pending.is_empty() {
            match intake.recv() {
                Ok(s) => {
                    metrics.intake_depth.fetch_sub(1, Ordering::Relaxed);
                    pending.push(s);
                    pending_count += 1;
                }
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        // Pull everything already queued so the batcher sees the full
        // backlog, not one request at a time.
        if open {
            while let Ok(s) = intake.try_recv() {
                metrics.intake_depth.fetch_sub(1, Ordering::Relaxed);
                pending.push(s);
                pending_count += 1;
            }
        }
        metrics
            .pending_depth
            .store(pending_count, Ordering::Relaxed);
        let admission_timer = StageTimer::start(&metrics.stages, Stage::Admission);
        let views = pending.views();
        let backlog: Vec<usize> = outstanding
            .iter()
            .map(|o| o.load(Ordering::Relaxed))
            .collect();
        let ctx = DispatchContext {
            worker_backlog: &backlog,
            affinity: &affinity,
            sticky_limit,
            last_dispatched,
        };
        let picked = policy
            .select(&views, &ctx, Instant::now())
            .min(views.len() - 1);
        let matrix_id = views[picked].matrix_id;
        let group = pending.take(matrix_id, config.max_batch);
        debug_assert!(!group.is_empty(), "selected group has pending work");
        drop(admission_timer);
        pending_count -= group.len() as u64;
        metrics
            .pending_depth
            .store(pending_count, Ordering::Relaxed);
        let formed_at = Instant::now();
        let group = reject_expired(group, formed_at, metrics);
        if group.is_empty() {
            continue;
        }
        if picked != 0 {
            metrics.admission_reorders.fetch_add(1, Ordering::Relaxed);
            metrics
                .recorder
                .record(EventKind::AdmissionReorder, matrix_id, group.len() as u64);
        }
        for sub in &group {
            metrics.stages.record_ns(
                Stage::Queue,
                formed_at.duration_since(sub.submitted_at).as_nanos() as u64,
            );
            if let Some(trace) = &sub.request.trace {
                trace.collector.end(sub.trace_queue);
            }
        }
        last_dispatched = Some(matrix_id);
        metrics.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        if group.len() > 1 {
            metrics
                .requests_batched
                .fetch_add(group.len() as u64, Ordering::Relaxed);
        }
        let worker = match affinity.get(&matrix_id) {
            Some(&w) if outstanding[w].load(Ordering::Relaxed) <= sticky_limit => w,
            // New (or rerouted) matrices go to the least-loaded worker,
            // ties broken toward the one serving the fewest matrices so
            // an idle fleet spreads the working set across all devices.
            _ => (0..config.devices)
                .min_by_key(|&w| (outstanding[w].load(Ordering::Relaxed), sticky_count[w]))
                .expect("at least one worker"),
        };
        match affinity.insert(matrix_id, worker) {
            Some(old) if old != worker => {
                sticky_count[old] -= 1;
                sticky_count[worker] += 1;
            }
            None => sticky_count[worker] += 1,
            _ => {}
        }
        outstanding[worker].fetch_add(group.len(), Ordering::Relaxed);
        if let Err(std::sync::mpsc::SendError(batch)) = senders[worker].send(Batch { group }) {
            // The worker died (it cannot under normal operation); fail
            // the batch loudly rather than dropping it silently.
            outstanding[worker].fetch_sub(batch.group.len(), Ordering::Relaxed);
            for sub in batch.group {
                let _ = sub.respond.send(Err(RuntimeError::WorkerLost));
            }
        }
    }
    drop(senders);
    for worker in workers {
        worker.join().expect("worker exits cleanly");
    }
}

/// The batch-formation deadline gate: requests that expired while
/// queued are rejected with a typed error here — before they can occupy
/// a batch slot, a worker queue entry, or a device pass — and the still
/// live remainder is returned. (The first gate is `Runtime::admit` for
/// dead-on-arrival requests; the last is `process_batch`, covering the
/// window between formation and execution.)
fn reject_expired(
    group: Vec<Submission>,
    formed_at: Instant,
    metrics: &MetricsRegistry,
) -> Vec<Submission> {
    let (live, dead): (Vec<Submission>, Vec<Submission>) = group
        .into_iter()
        .partition(|sub| sub.request.deadline.is_none_or(|d| d > formed_at));
    for sub in dead {
        metrics.rejected_deadline.fetch_add(1, Ordering::Relaxed);
        metrics.recorder.record(
            EventKind::DeadlineExpired,
            sub.request.matrix.id(),
            formed_at
                .duration_since(sub.request.deadline.expect("partitioned on deadline"))
                .as_nanos() as u64,
        );
        metrics.recorder.trip_incident();
        if let Some(trace) = &sub.request.trace {
            trace.collector.end(sub.trace_queue);
            trace
                .collector
                .annotate(sub.trace_queue, "deadline expired while queued");
        }
        let _ = sub.respond.send(Err(RuntimeError::DeadlineExpired));
    }
    live
}

/// Executes one same-matrix batch on a residency-affine device and fans
/// the outputs back out to the individual requests. `adc_fraction` is
/// digitisation's share of modeled compute energy (from the power
/// breakdown), used for per-stage energy attribution.
fn process_batch(batch: Batch, pool: &DevicePool, metrics: &MetricsRegistry, adc_fraction: f64) {
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.group.len());
    for sub in batch.group {
        if let Some(deadline) = sub.request.deadline.filter(|&d| d <= now) {
            metrics.rejected_deadline.fetch_add(1, Ordering::Relaxed);
            metrics.recorder.record(
                EventKind::DeadlineExpired,
                sub.request.matrix.id(),
                now.duration_since(deadline).as_nanos() as u64,
            );
            // Latch the incident so the exporter dumps the ring once,
            // capturing the events that led up to the first miss.
            metrics.recorder.trip_incident();
            let _ = sub.respond.send(Err(RuntimeError::DeadlineExpired));
        } else {
            live.push(sub);
        }
    }
    if live.is_empty() {
        return;
    }

    let matrix = Arc::clone(&live[0].request.matrix);
    // Merge the sharers' batches as borrowed slices — the executor splits
    // them straight into its own scratch, so no sample data is copied.
    let merged: Vec<&[f64]> = live
        .iter()
        .flat_map(|sub| sub.request.inputs.iter().map(Vec::as_slice))
        .collect();
    let total_samples = merged.len();

    let exec_start = Instant::now();
    let mut device = pool.acquire_for(matrix.id());
    let executed = device.execute_slices(&matrix, &merged);
    let device_id = device.device_id();
    drop(device);
    let exec_end = Instant::now();

    match executed {
        Ok((mut outputs, cost)) => {
            metrics
                .tile_writes
                .fetch_add(cost.tiles_written as u64, Ordering::Relaxed);
            metrics
                .tile_hits
                .fetch_add(cost.tiles_resident as u64, Ordering::Relaxed);
            metrics.energy_j.add(cost.total_energy_j());
            metrics.write_energy_j.add(cost.write_energy_j);
            metrics.device_time_s.add(cost.total_time_s());
            // Stage-level energy attribution: the write stage carries the
            // batch's tile-write energy exactly; compute energy splits
            // between analog compute and digitisation by the power
            // breakdown. Summing the three reconciles with `energy_j`.
            let digitize_energy = cost.compute_energy_j * adc_fraction;
            metrics
                .stages
                .add_energy_j(Stage::Write, cost.write_energy_j);
            metrics
                .stages
                .add_energy_j(Stage::Compute, cost.compute_energy_j - digitize_energy);
            metrics
                .stages
                .add_energy_j(Stage::Digitize, digitize_energy);
            metrics.recorder.record(
                if cost.tiles_written == 0 {
                    EventKind::ResidencyHit
                } else {
                    EventKind::ResidencyMiss
                },
                matrix.id(),
                device_id as u64,
            );
            let _respond_timer = StageTimer::start(&metrics.stages, Stage::Respond);
            let batched_with = live.len();
            let finished = Instant::now();
            for sub in live {
                let samples = sub.request.inputs.len();
                let rest = outputs.split_off(samples);
                let mine = std::mem::replace(&mut outputs, rest);
                let share = samples as f64 / total_samples as f64;
                let cost = RequestCost {
                    // Write effort is a property of the batch's single
                    // matrix pass; split it evenly across the sharers.
                    write_time_s: cost.write_time_s / batched_with as f64,
                    write_energy_j: cost.write_energy_j / batched_with as f64,
                    // Compute scales with this request's samples.
                    compute_time_s: cost.compute_time_s * share,
                    compute_energy_j: cost.compute_energy_j * share,
                    ..cost
                };
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                metrics
                    .latency
                    .record(finished.duration_since(sub.submitted_at).as_nanos() as u64);
                if let Some(trace) = &sub.request.trace {
                    record_service_span(
                        trace,
                        &cost,
                        exec_start,
                        exec_end,
                        device_id,
                        batched_with,
                        adc_fraction,
                    );
                }
                let _ = sub.respond.send(Ok(Response {
                    outputs: mine,
                    cost,
                    device: device_id,
                    batched_with,
                }));
            }
        }
        Err(e) => {
            // Per-request validation happens at submit, so this is a
            // configuration-level mismatch; every sharer gets the error.
            for sub in live {
                metrics.rejected_invalid.fetch_add(1, Ordering::Relaxed);
                let _ = sub.respond.send(Err(e.clone()));
            }
        }
    }
}

/// Records a traced request's "service" span over the measured device
/// pass, with modeled `write`/`compute`/`digitize` child spans
/// partitioning the pass proportionally to the hardware model. Each
/// child carries its stage's energy share, matching the registry's
/// stage-level attribution (so a trace reconciles with `/metrics`).
fn record_service_span(
    trace: &pic_obs::TraceContext,
    cost: &RequestCost,
    exec_start: Instant,
    exec_end: Instant,
    device_id: usize,
    batched_with: usize,
    adc_fraction: f64,
) {
    let c = &trace.collector;
    let Some(service) = c.span_between("service", trace.parent, exec_start, exec_end) else {
        return;
    };
    c.annotate(
        Some(service),
        &format!("device {device_id}, batched with {batched_with}"),
    );
    let base = c.offset_ns(exec_start);
    let span_ns = c.offset_ns(exec_end).saturating_sub(base);
    let model_s = cost.total_time_s();
    if span_ns == 0 || model_s <= 0.0 {
        c.add_energy_j(Some(service), cost.total_energy_j());
        return;
    }
    let digitize_s = cost.compute_time_s * adc_fraction;
    let mut edge = base;
    for (label, share_s, energy_j) in [
        ("write", cost.write_time_s, cost.write_energy_j),
        (
            "compute",
            cost.compute_time_s - digitize_s,
            cost.compute_energy_j * (1.0 - adc_fraction),
        ),
        ("digitize", digitize_s, cost.compute_energy_j * adc_fraction),
    ] {
        let width = (span_ns as f64 * (share_s / model_s)) as u64;
        let child = c.span_offsets(label, Some(service), edge, edge + width);
        c.add_energy_j(child, energy_j);
        edge += width;
    }
}

/// The registry frame plus pool-level gauges: idle device count, how
/// many idle devices hold a live resident tile, and a 0/1 residency
/// gauge per idle device.
fn runtime_frame(metrics: &MetricsRegistry, pool: &DevicePool) -> Frame {
    let mut frame = metrics.frame();
    let residency = pool.idle_residency();
    frame
        .gauges
        .push(("devices_idle".to_owned(), residency.len() as f64));
    frame.gauges.push((
        "devices_resident".to_owned(),
        residency.iter().filter(|(_, m)| m.is_some()).count() as f64,
    ));
    for (id, resident) in residency {
        frame.gauges.push((
            format!("device{id}_resident"),
            if resident.is_some() { 1.0 } else { 0.0 },
        ));
    }
    frame
}

/// The periodic exporter: frames every `interval`, the one-shot
/// incident dump when the flight recorder's latch trips, and a final
/// frame on shutdown.
fn exporter_loop(
    stop: &ExporterStop,
    interval: Duration,
    metrics: &MetricsRegistry,
    pool: &DevicePool,
    sink: &dyn SnapshotSink,
) {
    let mut previous: Option<Frame> = None;
    let mut incident_dumped = false;
    loop {
        let stopped = {
            let guard = stop.stopped.lock().expect("exporter lock");
            let (guard, _) = stop
                .wake
                .wait_timeout_while(guard, interval, |stopped| !*stopped)
                .expect("exporter lock");
            *guard
        };
        let frame = runtime_frame(metrics, pool);
        let delta = match &previous {
            Some(p) => frame.delta(p),
            None => frame.clone(),
        };
        sink.export(&frame, &delta);
        previous = Some(frame);
        if !incident_dumped && metrics.recorder.incident_tripped() {
            sink.incident(&metrics.recorder.dump());
            incident_dumped = true;
        }
        if stopped {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileShape, TiledMatrix};
    use std::time::Duration;

    fn small_runtime(devices: usize) -> Runtime {
        Runtime::start(RuntimeConfig {
            core: TensorCoreConfig::small_demo(),
            devices,
            queue_depth: 64,
            max_batch: 4,
            worker_queue_depth: 2,
            policy: AdmissionPolicyKind::ResidencyAware,
            max_delay: Duration::from_millis(100),
        })
    }

    fn matrix(out: usize, inp: usize) -> Arc<TiledMatrix> {
        let codes: Vec<Vec<u32>> = (0..out)
            .map(|r| (0..inp).map(|c| ((r + 2 * c) % 8) as u32).collect())
            .collect();
        Arc::new(TiledMatrix::from_codes(&codes, 3, TileShape::new(4, 4)))
    }

    #[test]
    fn starts_and_shuts_down_cleanly_without_work() {
        let mut rt = small_runtime(2);
        rt.shutdown();
        rt.shutdown(); // idempotent
    }

    /// Collects wake tokens, for the waker-contract tests.
    #[derive(Default)]
    struct RecordingWaker {
        tokens: std::sync::Mutex<Vec<u64>>,
        signal: std::sync::Condvar,
    }

    impl RecordingWaker {
        fn wait_for(&self, n: usize, timeout: Duration) -> Vec<u64> {
            let tokens = self.tokens.lock().expect("waker lock");
            let (tokens, _) = self
                .signal
                .wait_timeout_while(tokens, timeout, |t| t.len() < n)
                .expect("waker lock");
            tokens.clone()
        }
    }

    impl CompletionWaker for RecordingWaker {
        fn wake(&self, token: u64) {
            self.tokens.lock().expect("waker lock").push(token);
            self.signal.notify_all();
        }
    }

    #[test]
    fn waker_fires_once_after_the_handle_is_terminal() {
        let mut rt = small_runtime(2);
        let waker = Arc::new(RecordingWaker::default());
        let m = matrix(4, 4);
        let handles: Vec<(u64, ResponseHandle)> = (0..8u64)
            .map(|token| {
                let request = MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; m.in_dim()]]);
                let handle = rt
                    .submit_with_waker(request, token, Arc::clone(&waker) as _)
                    .expect("accepted");
                (token, handle)
            })
            .collect();
        let mut woken = waker.wait_for(8, Duration::from_secs(10));
        woken.sort_unstable();
        assert_eq!(woken, (0..8).collect::<Vec<u64>>(), "every token, once");
        for (token, handle) in handles {
            let resp = handle.try_wait();
            assert!(
                matches!(resp, Some(Ok(_))),
                "token {token}: wake implies try_wait observes the response"
            );
        }
        rt.shutdown();
        assert_eq!(
            waker.tokens.lock().expect("waker lock").len(),
            8,
            "no spurious wakes at shutdown"
        );
    }

    #[test]
    fn synchronous_rejections_never_wake() {
        let mut rt = small_runtime(1);
        let waker = Arc::new(RecordingWaker::default());
        let m = matrix(4, 4);
        // Dead-on-arrival: rejected at admission, synchronously.
        let doa = MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; m.in_dim()]])
            .with_deadline(Instant::now() - Duration::from_millis(5));
        assert!(matches!(
            rt.submit_with_waker(doa, 1, Arc::clone(&waker) as _),
            Err(RuntimeError::DeadlineExpired)
        ));
        // Invalid shape: rejected at admission, synchronously.
        let bad = MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; m.in_dim() + 1]]);
        assert!(matches!(
            rt.submit_with_waker(bad, 2, Arc::clone(&waker) as _),
            Err(RuntimeError::InvalidRequest(_))
        ));
        // After drain: rejected with ShuttingDown, synchronously.
        rt.drain();
        let late = MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; m.in_dim()]]);
        assert!(matches!(
            rt.submit_with_waker(late, 3, Arc::clone(&waker) as _),
            Err(RuntimeError::ShuttingDown)
        ));
        rt.shutdown();
        assert!(
            waker.tokens.lock().expect("waker lock").is_empty(),
            "an Err submit must never fire the waker"
        );
    }

    #[test]
    fn serves_mixed_matrices_with_no_lost_responses() {
        let rt = small_runtime(2);
        let (a, b) = (matrix(4, 4), matrix(10, 7));
        let handles: Vec<ResponseHandle> = (0..40)
            .map(|i| {
                let m = if i % 2 == 0 { &a } else { &b };
                let x = vec![vec![0.5; m.in_dim()]; 1 + i % 3];
                rt.submit_blocking(MatmulRequest::new(Arc::clone(m), x))
                    .expect("accepted")
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait().expect("completed");
            let m = if i % 2 == 0 { &a } else { &b };
            assert_eq!(resp.outputs.len(), 1 + i % 3, "request {i} batch size");
            assert_eq!(resp.outputs[0].len(), m.out_dim(), "request {i} rows");
            assert!(resp.cost.total_energy_j() > 0.0);
        }
        let s = rt.metrics().snapshot();
        assert_eq!(s.submitted, 40);
        assert_eq!(s.completed, 40);
        assert_eq!(
            s.rejected_deadline + s.rejected_invalid + s.rejected_queue_full,
            0
        );
    }

    #[test]
    fn batched_responses_match_solo_execution() {
        // Force batching deterministically: one worker, and the first
        // (multi-tile, slow) request occupies it while the rest queue up.
        let rt = small_runtime(1);
        let m = matrix(8, 8);
        let inputs: Vec<Vec<Vec<f64>>> = (0..6)
            .map(|i| {
                vec![(0..8)
                    .map(|c| f64::from((i + c) as u32 % 9) / 9.0)
                    .collect()]
            })
            .collect();
        let handles: Vec<ResponseHandle> = inputs
            .iter()
            .map(|x| {
                rt.submit_blocking(MatmulRequest::new(Arc::clone(&m), x.clone()))
                    .expect("accepted")
            })
            .collect();
        let mut solo = crate::executor::TileExecutor::new(TensorCoreConfig::small_demo(), 99);
        for (x, h) in inputs.iter().zip(handles) {
            let resp = h.wait().expect("completed");
            let (want, _) = solo.execute(&m, x).expect("reference");
            assert_eq!(resp.outputs, want, "batched result must equal solo");
        }
    }

    #[test]
    fn expired_deadlines_reject_at_submit_with_no_admission_work() {
        let rt = small_runtime(1);
        let m = matrix(4, 4);
        let expired = MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; 4]])
            .with_deadline(Instant::now() - Duration::from_millis(1));
        // Dead on arrival: the typed error comes back synchronously —
        // the request never reaches the intake queue.
        assert!(matches!(
            rt.submit(expired),
            Err(RuntimeError::DeadlineExpired)
        ));
        let s = rt.metrics().snapshot();
        assert_eq!(s.rejected_deadline, 1, "typed rejection counted");
        assert_eq!(
            (s.submitted, s.batches_dispatched, s.admission_reorders),
            (0, 0, 0),
            "a DOA request is charged no intake or admission work"
        );
        let generous = MatmulRequest::new(m, vec![vec![0.5; 4]])
            .with_deadline(Instant::now() + Duration::from_secs(60));
        let h = rt.submit(generous).expect("accepted");
        assert!(h.wait().is_ok(), "future deadline must not reject");
        let s = rt.metrics().snapshot();
        assert_eq!((s.rejected_deadline, s.completed), (1, 1));
    }

    #[test]
    fn batch_formation_gate_rejects_requests_that_expired_while_queued() {
        // Deterministic unit drive of the second gate: two submissions
        // whose deadlines straddle the formation instant. The expired one
        // gets its typed error (and the recorder event + incident latch)
        // without ever occupying a batch slot; the live one passes
        // through untouched.
        let metrics = MetricsRegistry::default();
        let m = matrix(4, 4);
        let submitted_at = Instant::now();
        let formed_at = submitted_at + Duration::from_millis(10);
        let mut channels = Vec::new();
        let group: Vec<Submission> = [Duration::from_millis(5), Duration::from_secs(60)]
            .into_iter()
            .map(|ttl| {
                let (tx, rx) = std::sync::mpsc::sync_channel(1);
                channels.push(rx);
                Submission {
                    request: MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; 4]])
                        .with_deadline(submitted_at + ttl),
                    respond: tx,
                    submitted_at,
                    trace_queue: None,
                    wake: None,
                }
            })
            .collect();
        let live = reject_expired(group, formed_at, &metrics);
        assert_eq!(live.len(), 1, "only the live deadline survives");
        assert_eq!(
            live[0].request.deadline,
            Some(submitted_at + Duration::from_secs(60))
        );
        assert!(matches!(
            channels[0].try_recv(),
            Ok(Err(RuntimeError::DeadlineExpired))
        ));
        assert!(
            channels[1].try_recv().is_err(),
            "the live request got no response yet"
        );
        assert_eq!(metrics.rejected_deadline.load(Ordering::Relaxed), 1);
        if pic_obs::enabled() {
            assert!(metrics.recorder.incident_tripped());
            let dump = metrics.recorder.dump();
            assert_eq!(dump.len(), 1);
            assert_eq!(dump[0].kind, EventKind::DeadlineExpired);
        }
    }

    #[test]
    fn traced_request_collects_queue_and_service_spans() {
        let rt = small_runtime(1);
        let m = matrix(4, 4);
        let collector = pic_obs::TraceCollector::start(pic_obs::TraceId::mint(1, 0), true);
        let ctx = pic_obs::TraceContext::new(Arc::clone(&collector));
        let req = MatmulRequest::new(m, vec![vec![0.5; 4]]).with_trace(ctx);
        let h = rt.submit(req).expect("accepted");
        let resp = h.wait().expect("completed");
        if !pic_obs::enabled() {
            return;
        }
        let record = collector.finish(collector.offset_ns(Instant::now()));
        let labels: Vec<&str> = record.spans.iter().map(|s| s.label).collect();
        for expected in ["queue", "service", "write", "compute", "digitize"] {
            assert!(labels.contains(&expected), "missing {expected}: {labels:?}");
        }
        let queue = record
            .spans
            .iter()
            .find(|s| s.label == "queue")
            .expect("queue span");
        assert!(queue.queue_depth.is_some(), "queue depth tagged at entry");
        let service_idx = record
            .spans
            .iter()
            .position(|s| s.label == "service")
            .expect("service span");
        let service = &record.spans[service_idx];
        assert!(
            service
                .annotation
                .as_deref()
                .unwrap_or("")
                .contains("device"),
            "service span names its device: {service:?}"
        );
        // The modeled children partition the service span and carry
        // the request's energy split exactly.
        let child_energy: f64 = record
            .spans
            .iter()
            .filter(|s| s.parent == Some(service_idx as u32))
            .map(|s| s.energy_j)
            .sum();
        let total = resp.cost.total_energy_j();
        assert!(
            (child_energy - total).abs() <= 1e-12 * total.max(1.0),
            "span energy {child_energy} != request energy {total}"
        );
        assert!(record
            .spans
            .iter()
            .filter(|s| s.parent == Some(service_idx as u32))
            .all(|s| s.start_ns >= service.start_ns && s.end_ns <= service.end_ns));
    }

    #[test]
    fn invalid_requests_bounce_at_the_front_door() {
        let rt = small_runtime(1);
        let m = matrix(4, 4);
        let bad = MatmulRequest::new(m, vec![vec![1.5; 4]]);
        assert!(matches!(
            rt.submit(bad),
            Err(RuntimeError::InvalidRequest(_))
        ));
        assert_eq!(rt.metrics().snapshot().rejected_invalid, 1);
    }

    #[test]
    fn wait_timeout_times_out_then_delivers() {
        // A handle wired to a raw channel: nothing arrives within the
        // timeout, then the response does.
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let handle = ResponseHandle::new(rx);
        assert!(
            handle.wait_timeout(Duration::from_millis(10)).is_none(),
            "timeout before anything is sent"
        );
        tx.send(Err(RuntimeError::QueueFull)).expect("send");
        match handle.wait_timeout(Duration::from_millis(10)) {
            Some(Err(RuntimeError::QueueFull)) => {}
            other => panic!("expected the queued response, got {other:?}"),
        }
        // The handle is terminal now: further waits return WorkerLost
        // immediately (no blocking, no panic) — even though the sender
        // is still alive and the channel open.
        let waited = Instant::now();
        assert!(matches!(
            handle.wait_timeout(Duration::from_secs(30)),
            Some(Err(RuntimeError::WorkerLost))
        ));
        assert!(
            waited.elapsed() < Duration::from_secs(1),
            "a terminal handle must not block for the timeout"
        );
        assert!(matches!(
            handle.try_wait(),
            Some(Err(RuntimeError::WorkerLost))
        ));
        drop(tx);
        assert!(matches!(handle.wait(), Err(RuntimeError::WorkerLost)));
        // And against a live runtime: a served request arrives within a
        // generous timeout.
        let rt = small_runtime(1);
        let m = matrix(4, 4);
        let h = rt
            .submit_blocking(MatmulRequest::new(m, vec![vec![0.5; 4]]))
            .expect("accepted");
        let resp = h
            .wait_timeout(Duration::from_secs(30))
            .expect("served within timeout")
            .expect("request succeeds");
        assert_eq!(resp.outputs.len(), 1);
    }

    #[test]
    fn handle_after_runtime_drop_surfaces_worker_lost_without_blocking() {
        // The runtime drains on drop, so an accepted request still gets
        // its response; here the handle's channel dies unresolved — a
        // raw channel whose sender dropped without sending, as after a
        // worker loss. Every wait flavour must surface WorkerLost
        // immediately and keep doing so (no hang, no panic on repeat).
        let (tx, rx) = std::sync::mpsc::sync_channel::<Result<Response, RuntimeError>>(1);
        let handle = ResponseHandle::new(rx);
        drop(tx);
        let waited = Instant::now();
        assert!(matches!(
            handle.wait_timeout(Duration::from_secs(30)),
            Some(Err(RuntimeError::WorkerLost))
        ));
        assert!(
            waited.elapsed() < Duration::from_secs(1),
            "disconnect must resolve immediately, not after the timeout"
        );
        // Repeated calls on the now-terminal handle stay deterministic.
        for _ in 0..3 {
            assert!(matches!(
                handle.wait_timeout(Duration::from_millis(1)),
                Some(Err(RuntimeError::WorkerLost))
            ));
            assert!(matches!(
                handle.try_wait(),
                Some(Err(RuntimeError::WorkerLost))
            ));
        }
        assert!(matches!(handle.wait(), Err(RuntimeError::WorkerLost)));
    }

    #[test]
    fn submit_after_shutdown_is_a_typed_error() {
        let mut rt = small_runtime(1);
        rt.shutdown();
        let m = matrix(4, 4);
        assert!(matches!(
            rt.submit(MatmulRequest::new(m, vec![vec![0.5; 4]])),
            Err(RuntimeError::ShuttingDown)
        ));
    }

    #[test]
    fn kill_abandons_pending_work_with_worker_lost() {
        let rt = Runtime::start(RuntimeConfig {
            core: TensorCoreConfig::small_demo(),
            devices: 1,
            queue_depth: 256,
            max_batch: 1,
            worker_queue_depth: 1,
            policy: AdmissionPolicyKind::Fifo,
            max_delay: Duration::from_millis(100),
        });
        // Distinct matrices force a fresh tile write per batch, keeping
        // the lone worker busy while the backlog sits undispatched.
        let handles: Vec<ResponseHandle> = (0..128)
            .map(|_| {
                rt.submit(MatmulRequest::new(matrix(4, 4), vec![vec![0.5; 4]]))
                    .expect("accepted")
            })
            .collect();
        rt.kill();
        assert!(
            matches!(
                rt.submit(MatmulRequest::new(matrix(4, 4), vec![vec![0.5; 4]])),
                Err(RuntimeError::ShuttingDown)
            ),
            "a killed node stops accepting"
        );
        let (mut ok, mut lost) = (0usize, 0usize);
        for h in handles {
            match h.wait() {
                Ok(_) => ok += 1,
                Err(RuntimeError::WorkerLost) => lost += 1,
                Err(e) => panic!("kill surfaces WorkerLost, not {e:?}"),
            }
        }
        assert_eq!(ok + lost, 128);
        assert!(
            lost >= 1,
            "the abandoned backlog must surface typed errors (ok={ok})"
        );
    }

    #[test]
    fn drop_drains_accepted_work() {
        let m = matrix(8, 8);
        let handles: Vec<ResponseHandle> = {
            let rt = small_runtime(2);
            (0..10)
                .map(|_| {
                    rt.submit_blocking(MatmulRequest::new(Arc::clone(&m), vec![vec![0.25; 8]]))
                        .expect("accepted")
                })
                .collect()
            // rt drops here: shutdown must drain, not discard.
        };
        for h in handles {
            assert!(h.wait().is_ok(), "accepted work survives shutdown");
        }
    }
}
