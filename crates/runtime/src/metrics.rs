//! Lock-free serving metrics: counters, latency histograms, energy.
//!
//! Workers record into atomics (no locks on the hot path); a
//! [`MetricsRegistry::snapshot`] collapses everything into a serialisable
//! [`MetricsSnapshot`] for the benchmark JSON and operator dashboards.

use std::sync::atomic::{AtomicU64, Ordering};

/// Power-of-two bucket count of the latency histogram: bucket `i` holds
/// samples in `[2^i, 2^{i+1})` nanoseconds, which covers ~584 years in
/// the last bucket — nothing saturates.
const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram over nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&self, nanos: u64) {
        let bucket = (63 - nanos.max(1).leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in seconds (0 when empty).
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1e9
    }

    /// The latency at quantile `q ∈ [0, 1]`, in seconds, interpolated
    /// linearly within its log₂ bucket (0 when empty).
    ///
    /// Bucket `i` spans `[2^i, 2^{i+1})` ns; the rank's position among
    /// the bucket's samples places the estimate between those edges, so
    /// quantiles no longer snap to powers of two (a bucket holding the
    /// single top-ranked sample still reports its upper edge, matching
    /// the pre-interpolation behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `q` leaves `[0, 1]`.
    #[must_use]
    pub fn quantile_s(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile in [0, 1], got {q}");
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let here = bucket.load(Ordering::Relaxed);
            seen += here;
            if seen >= rank {
                let lower = 2f64.powi(i as i32);
                let upper = 2f64.powi(i as i32 + 1);
                let position = (rank - (seen - here)) as f64 / here as f64;
                return (lower + (upper - lower) * position) / 1e9;
            }
        }
        2f64.powi(BUCKETS as i32) / 1e9
    }
}

/// An `f64` accumulator built on atomic compare-and-swap of the bit
/// pattern (std has no `AtomicF64`).
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Adds `v` atomically.
    pub fn add(&self, v: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The accumulated value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The runtime's metrics registry; one per [`Runtime`](crate::Runtime).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Requests accepted into the intake queue.
    pub submitted: AtomicU64,
    /// Requests completed with a response.
    pub completed: AtomicU64,
    /// Requests rejected because their deadline expired pre-execution.
    pub rejected_deadline: AtomicU64,
    /// Requests rejected by intake backpressure.
    pub rejected_queue_full: AtomicU64,
    /// Requests rejected by validation.
    pub rejected_invalid: AtomicU64,
    /// Batches dispatched to workers.
    pub batches_dispatched: AtomicU64,
    /// Requests that shared a batch with at least one other request.
    pub requests_batched: AtomicU64,
    /// Batches the admission policy dispatched out of strict arrival
    /// order (0 under FIFO).
    pub admission_reorders: AtomicU64,
    /// Tiles streamed through the optical write path.
    pub tile_writes: AtomicU64,
    /// Tile loads avoided by residency.
    pub tile_hits: AtomicU64,
    /// End-to-end request latency (submit → response).
    pub latency: LatencyHistogram,
    /// Modeled hardware energy charged to completed requests, J.
    pub energy_j: AtomicF64,
    /// The pSRAM tile-write share of [`MetricsRegistry::energy_j`] — the
    /// component residency-aware admission exists to cut.
    pub write_energy_j: AtomicF64,
    /// Modeled hardware time charged to completed requests, s.
    pub device_time_s: AtomicF64,
}

/// A serialisable point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the intake queue.
    pub submitted: u64,
    /// Requests completed with a response.
    pub completed: u64,
    /// Requests rejected because their deadline expired pre-execution.
    pub rejected_deadline: u64,
    /// Requests rejected by intake backpressure.
    pub rejected_queue_full: u64,
    /// Requests rejected by validation.
    pub rejected_invalid: u64,
    /// Batches dispatched to workers.
    pub batches_dispatched: u64,
    /// Requests that shared a batch with at least one other request.
    pub requests_batched: u64,
    /// Batches dispatched out of strict arrival order (0 under FIFO).
    pub admission_reorders: u64,
    /// Tiles streamed through the optical write path.
    pub tile_writes: u64,
    /// Tile loads avoided by residency.
    pub tile_hits: u64,
    /// Mean submit→response latency, s.
    pub latency_mean_s: f64,
    /// Median submit→response latency, s.
    pub latency_p50_s: f64,
    /// 99th-percentile submit→response latency, s.
    pub latency_p99_s: f64,
    /// Modeled hardware energy charged to completed requests, J.
    pub energy_j: f64,
    /// The pSRAM tile-write share of `energy_j`.
    pub write_energy_j: f64,
    /// Modeled hardware time charged to completed requests, s.
    pub device_time_s: f64,
}

impl MetricsRegistry {
    /// Collapses the registry into a serialisable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            requests_batched: self.requests_batched.load(Ordering::Relaxed),
            admission_reorders: self.admission_reorders.load(Ordering::Relaxed),
            tile_writes: self.tile_writes.load(Ordering::Relaxed),
            tile_hits: self.tile_hits.load(Ordering::Relaxed),
            latency_mean_s: self.latency.mean_s(),
            latency_p50_s: self.latency.quantile_s(0.5),
            latency_p99_s: self.latency.quantile_s(0.99),
            energy_j: self.energy_j.get(),
            write_energy_j: self.write_energy_j.get(),
            device_time_s: self.device_time_s.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(1_000); // ~1 µs
        }
        h.record(1_000_000_000); // 1 s outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_s(0.5);
        assert!(p50 < 3e-6, "p50 {p50} should sit at the µs cluster");
        let p99 = h.quantile_s(0.99);
        assert!(p99 < 3e-6, "p99 {p99} still inside the cluster of 99");
        let p100 = h.quantile_s(1.0);
        assert!(p100 >= 1.0, "max must see the outlier, got {p100}");
        assert!(h.mean_s() > 0.009 && h.mean_s() < 0.011);
    }

    #[test]
    fn quantiles_interpolate_within_their_bucket() {
        // 100 identical 1000 ns samples all land in bucket 9
        // ([512, 1024) ns): rank r interpolates to 512 + 512·(r/100).
        let h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(1_000);
        }
        assert!((h.quantile_s(0.5) - 768e-9).abs() < 1e-15, "mid-bucket p50");
        assert!(
            (h.quantile_s(0.25) - 640e-9).abs() < 1e-15,
            "quarter-bucket p25"
        );
        assert!((h.quantile_s(1.0) - 1024e-9).abs() < 1e-15, "full bucket");
        // A single top-ranked sample still resolves to its bucket's
        // upper edge (the pre-interpolation convention).
        let h = LatencyHistogram::default();
        h.record(1_000);
        h.record(1_000_000_000); // bucket 29: [2^29, 2^30) ns
        let p100 = h.quantile_s(1.0);
        assert!((p100 - 2f64.powi(30) / 1e9).abs() < 1e-12);
        // And the two-sample median sits at bucket 9's upper edge, not
        // snapped to a whole power of two of seconds.
        assert!((h.quantile_s(0.5) - 1024e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_s(0.99), 0.0);
        assert_eq!(h.mean_s(), 0.0);
    }

    #[test]
    fn atomic_f64_accumulates_across_threads() {
        let acc = Arc::new(AtomicF64::default());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let acc = Arc::clone(&acc);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        acc.add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread finishes");
        }
        assert!((acc.get() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_mirrors_the_registry() {
        let m = MetricsRegistry::default();
        m.submitted.fetch_add(5, Ordering::Relaxed);
        m.completed.fetch_add(4, Ordering::Relaxed);
        m.rejected_deadline.fetch_add(1, Ordering::Relaxed);
        m.tile_writes.fetch_add(7, Ordering::Relaxed);
        m.tile_hits.fetch_add(3, Ordering::Relaxed);
        m.energy_j.add(1.5e-9);
        m.latency.record(2_000);
        let s = m.snapshot();
        assert_eq!((s.submitted, s.completed, s.rejected_deadline), (5, 4, 1));
        assert_eq!((s.tile_writes, s.tile_hits), (7, 3));
        assert!((s.energy_j - 1.5e-9).abs() < 1e-21);
        assert!(s.latency_p50_s > 0.0);
        let json = serde_json::to_string(&s).expect("serialises");
        assert!(json.contains("latency_p99_s"));
    }
}
