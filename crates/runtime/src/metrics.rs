//! Lock-free serving metrics: counters, latency histograms, per-stage
//! statistics, energy, and the flight recorder.
//!
//! Workers record into atomics (no locks on the hot path); a
//! [`MetricsRegistry::snapshot`] collapses everything into a
//! serialisable [`MetricsSnapshot`] for the benchmark JSON, and
//! [`MetricsRegistry::frame`] builds a [`pic_obs::Frame`] for the
//! Prometheus/JSON exposition layer and the periodic exporter.
//!
//! The histogram and float-accumulator primitives live in `pic-obs`
//! (re-exported here for compatibility); this module owns the
//! registry that wires them to the runtime's request lifecycle.

pub use pic_obs::{AtomicF64, LatencyHistogram};

use pic_obs::{FlightRecorder, Frame, Stage, StageFrame, StageStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The runtime's metrics registry; one per [`Runtime`](crate::Runtime).
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Requests accepted into the intake queue.
    pub submitted: AtomicU64,
    /// Requests completed with a response.
    pub completed: AtomicU64,
    /// Requests rejected because their deadline expired pre-execution.
    pub rejected_deadline: AtomicU64,
    /// Requests rejected by intake backpressure.
    pub rejected_queue_full: AtomicU64,
    /// Requests rejected by validation.
    pub rejected_invalid: AtomicU64,
    /// Batches dispatched to workers.
    pub batches_dispatched: AtomicU64,
    /// Requests that shared a batch with at least one other request.
    pub requests_batched: AtomicU64,
    /// Batches the admission policy dispatched out of strict arrival
    /// order (0 under FIFO).
    pub admission_reorders: AtomicU64,
    /// Tiles streamed through the optical write path.
    pub tile_writes: AtomicU64,
    /// Tile loads avoided by residency.
    pub tile_hits: AtomicU64,
    /// End-to-end request latency (submit → response).
    pub latency: LatencyHistogram,
    /// Modeled hardware energy charged to completed requests, J.
    pub energy_j: AtomicF64,
    /// The pSRAM tile-write share of [`MetricsRegistry::energy_j`] — the
    /// component residency-aware admission exists to cut.
    pub write_energy_j: AtomicF64,
    /// Modeled hardware time charged to completed requests, s.
    pub device_time_s: AtomicF64,
    /// Per-stage wall-clock histograms and modeled energy attribution
    /// (shared with worker threads as their ambient span collector).
    pub stages: Arc<StageStats>,
    /// Ring buffer of recent structured events for post-mortem dumps.
    pub recorder: Arc<FlightRecorder>,
    /// Live gauge: requests sitting in the bounded intake queue.
    pub intake_depth: AtomicU64,
    /// Live gauge: requests in the dispatcher's pending queues.
    pub pending_depth: AtomicU64,
    /// Live gauge: workers currently executing a batch.
    pub workers_busy: AtomicU64,
    /// Cumulative wall-clock nanoseconds workers spent executing
    /// batches (windowed against elapsed time it yields busy fraction).
    pub worker_busy_ns: AtomicU64,
    /// Worker/device count, set at runtime start (0 outside a runtime).
    pub devices: AtomicU64,
    /// Registry creation time — the origin of [`Frame::at_s`].
    started: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_deadline: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            requests_batched: AtomicU64::new(0),
            admission_reorders: AtomicU64::new(0),
            tile_writes: AtomicU64::new(0),
            tile_hits: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            energy_j: AtomicF64::new(),
            write_energy_j: AtomicF64::new(),
            device_time_s: AtomicF64::new(),
            stages: Arc::new(StageStats::new()),
            recorder: Arc::new(FlightRecorder::default()),
            intake_depth: AtomicU64::new(0),
            pending_depth: AtomicU64::new(0),
            workers_busy: AtomicU64::new(0),
            worker_busy_ns: AtomicU64::new(0),
            devices: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

/// A serialisable point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Requests accepted into the intake queue.
    pub submitted: u64,
    /// Requests completed with a response.
    pub completed: u64,
    /// Requests rejected because their deadline expired pre-execution.
    pub rejected_deadline: u64,
    /// Requests rejected by intake backpressure.
    pub rejected_queue_full: u64,
    /// Requests rejected by validation.
    pub rejected_invalid: u64,
    /// Batches dispatched to workers.
    pub batches_dispatched: u64,
    /// Requests that shared a batch with at least one other request.
    pub requests_batched: u64,
    /// Batches dispatched out of strict arrival order (0 under FIFO).
    pub admission_reorders: u64,
    /// Tiles streamed through the optical write path.
    pub tile_writes: u64,
    /// Tile loads avoided by residency.
    pub tile_hits: u64,
    /// Share of tile loads served from residency:
    /// `tile_hits / (tile_hits + tile_writes)`. `None` when no tile has
    /// moved yet — "no traffic" is not the same observation as "every
    /// tile missed", and consumers must not conflate them.
    pub tile_hit_rate: Option<f64>,
    /// Mean submit→response latency, s.
    pub latency_mean_s: f64,
    /// Median submit→response latency, s.
    pub latency_p50_s: f64,
    /// 99th-percentile submit→response latency, s.
    pub latency_p99_s: f64,
    /// 99.9th-percentile submit→response latency, s.
    pub latency_p999_s: f64,
    /// Largest observed submit→response latency (bucket upper edge), s.
    pub latency_max_s: f64,
    /// Modeled hardware energy charged to completed requests, J.
    pub energy_j: f64,
    /// The pSRAM tile-write share of `energy_j`.
    pub write_energy_j: f64,
    /// Modeled hardware time charged to completed requests, s.
    pub device_time_s: f64,
}

impl MetricsRegistry {
    /// Collapses the registry into a serialisable snapshot. All latency
    /// statistics derive from one consistent histogram snapshot, so the
    /// quantiles in a single [`MetricsSnapshot`] never disagree about
    /// the sample count even under concurrent recording.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let latency = self.latency.snapshot();
        let tile_writes = self.tile_writes.load(Ordering::Relaxed);
        let tile_hits = self.tile_hits.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            requests_batched: self.requests_batched.load(Ordering::Relaxed),
            admission_reorders: self.admission_reorders.load(Ordering::Relaxed),
            tile_writes,
            tile_hits,
            tile_hit_rate: match tile_hits + tile_writes {
                0 => None,
                total => Some(tile_hits as f64 / total as f64),
            },
            latency_mean_s: latency.mean_s(),
            latency_p50_s: latency.quantile_s(0.5),
            latency_p99_s: latency.quantile_s(0.99),
            latency_p999_s: latency.quantile_s(0.999),
            latency_max_s: latency.max_s(),
            energy_j: self.energy_j.get(),
            write_energy_j: self.write_energy_j.get(),
            device_time_s: self.device_time_s.get(),
        }
    }

    /// Builds the unified exposition [`Frame`]: every counter, the live
    /// gauges, the per-stage latency/energy rows, and the end-to-end
    /// latency histogram. Pool-level gauges (idle devices, residency)
    /// are appended by [`Runtime::frame`](crate::Runtime::frame).
    #[must_use]
    pub fn frame(&self) -> Frame {
        let devices = self.devices.load(Ordering::Relaxed);
        let busy = self.workers_busy.load(Ordering::Relaxed);
        let tile_writes = self.tile_writes.load(Ordering::Relaxed);
        let tile_hits = self.tile_hits.load(Ordering::Relaxed);
        let mut gauges = vec![
            (
                "intake_depth".to_owned(),
                self.intake_depth.load(Ordering::Relaxed) as f64,
            ),
            (
                "pending_depth".to_owned(),
                self.pending_depth.load(Ordering::Relaxed) as f64,
            ),
            ("workers_busy".to_owned(), busy as f64),
            ("devices".to_owned(), devices as f64),
            ("energy_j".to_owned(), self.energy_j.get()),
            ("write_energy_j".to_owned(), self.write_energy_j.get()),
            ("device_time_s".to_owned(), self.device_time_s.get()),
        ];
        // Derived rates are only meaningful with a non-zero denominator;
        // omitting them distinguishes "no traffic / no devices" from a
        // genuine zero.
        if devices > 0 {
            gauges.push((
                "worker_busy_fraction".to_owned(),
                busy as f64 / devices as f64,
            ));
        }
        if tile_hits + tile_writes > 0 {
            gauges.push((
                "tile_hit_rate".to_owned(),
                tile_hits as f64 / (tile_hits + tile_writes) as f64,
            ));
        }
        Frame {
            at_s: self.started.elapsed().as_secs_f64(),
            counters: vec![
                ("requests_submitted", self.submitted.load(Ordering::Relaxed)),
                ("requests_completed", self.completed.load(Ordering::Relaxed)),
                (
                    "rejected_deadline",
                    self.rejected_deadline.load(Ordering::Relaxed),
                ),
                (
                    "rejected_queue_full",
                    self.rejected_queue_full.load(Ordering::Relaxed),
                ),
                (
                    "rejected_invalid",
                    self.rejected_invalid.load(Ordering::Relaxed),
                ),
                (
                    "batches_dispatched",
                    self.batches_dispatched.load(Ordering::Relaxed),
                ),
                (
                    "requests_batched",
                    self.requests_batched.load(Ordering::Relaxed),
                ),
                (
                    "admission_reorders",
                    self.admission_reorders.load(Ordering::Relaxed),
                ),
                ("tile_writes", self.tile_writes.load(Ordering::Relaxed)),
                ("tile_hits", self.tile_hits.load(Ordering::Relaxed)),
                (
                    "worker_busy_ns",
                    self.worker_busy_ns.load(Ordering::Relaxed),
                ),
                ("recorder_events", self.recorder.recorded()),
                ("recorder_dropped_events", self.recorder.dropped()),
            ],
            gauges,
            stages: self
                .stages
                .snapshot()
                .into_iter()
                .map(StageFrame::from)
                .collect(),
            hists: vec![("latency", self.latency.snapshot())],
        }
    }

    /// Total modeled energy attributed across stages, J. Reconciles
    /// with the [`MetricsRegistry::energy_j`] counter (same batch-level
    /// sources, so they agree to floating-point accumulation order).
    #[must_use]
    pub fn stage_energy_total_j(&self) -> f64 {
        self.stages.total_energy_j()
    }

    /// The write stage's attributed energy, J (reconciles with
    /// [`MetricsRegistry::write_energy_j`]).
    #[must_use]
    pub fn stage_write_energy_j(&self) -> f64 {
        self.stages.energy_j(Stage::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pic_obs::EventKind;

    #[test]
    fn snapshot_mirrors_the_registry() {
        let m = MetricsRegistry::default();
        m.submitted.fetch_add(5, Ordering::Relaxed);
        m.completed.fetch_add(4, Ordering::Relaxed);
        m.rejected_deadline.fetch_add(1, Ordering::Relaxed);
        m.tile_writes.fetch_add(7, Ordering::Relaxed);
        m.tile_hits.fetch_add(3, Ordering::Relaxed);
        m.energy_j.add(1.5e-9);
        m.latency.record(2_000);
        let s = m.snapshot();
        assert_eq!((s.submitted, s.completed, s.rejected_deadline), (5, 4, 1));
        assert_eq!((s.tile_writes, s.tile_hits), (7, 3));
        let rate = s.tile_hit_rate.expect("traffic flowed, rate defined");
        assert!((rate - 0.3).abs() < 1e-12);
        assert!((s.energy_j - 1.5e-9).abs() < 1e-21);
        assert!(s.latency_p50_s > 0.0);
        assert!(s.latency_p999_s >= s.latency_p99_s);
        assert!(s.latency_max_s >= s.latency_p999_s);
        let json = serde_json::to_string(&s).expect("serialises");
        assert!(json.contains("latency_p999_s"));
        assert!(json.contains("latency_max_s"));
        assert!(json.contains("tile_hit_rate"));
    }

    #[test]
    fn tile_hit_rate_is_absent_without_traffic() {
        let m = MetricsRegistry::default();
        let s = m.snapshot();
        assert_eq!(s.tile_hit_rate, None, "no traffic must not read as 0.0");
        assert_eq!(s.latency_max_s, 0.0);
        // An all-miss workload IS a defined 0.0 — distinguishable now.
        m.tile_writes.fetch_add(3, Ordering::Relaxed);
        assert_eq!(m.snapshot().tile_hit_rate, Some(0.0));
        // The snapshot round-trips through JSON in both states.
        let json = serde_json::to_string(&s).expect("serialises");
        assert!(json.contains("\"tile_hit_rate\":null"));
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.tile_hit_rate, None);
    }

    #[test]
    fn derived_gauges_are_omitted_when_undefined() {
        let m = MetricsRegistry::default();
        let gauge = |f: &Frame, n: &str| f.gauges.iter().find(|(name, _)| name == n).map(|g| g.1);
        // No devices registered, no tile traffic: the ratios are absent
        // rather than a fabricated 0.0.
        let f = m.frame();
        assert_eq!(gauge(&f, "worker_busy_fraction"), None);
        assert_eq!(gauge(&f, "tile_hit_rate"), None);
        assert_eq!(gauge(&f, "devices"), Some(0.0));
        m.devices.store(4, Ordering::Relaxed);
        m.workers_busy.fetch_add(1, Ordering::Relaxed);
        m.tile_writes.fetch_add(1, Ordering::Relaxed);
        m.tile_hits.fetch_add(3, Ordering::Relaxed);
        let f = m.frame();
        assert_eq!(gauge(&f, "worker_busy_fraction"), Some(0.25));
        assert_eq!(gauge(&f, "tile_hit_rate"), Some(0.75));
        assert_eq!(gauge(&f, "devices"), Some(4.0));
        // Every exposed gauge is finite — nothing leaks a NaN into the
        // Prometheus rendering.
        assert!(f.gauges.iter().all(|(_, v)| v.is_finite()));
    }

    #[test]
    fn frame_carries_counters_gauges_stages_and_latency() {
        let m = MetricsRegistry::default();
        m.completed.fetch_add(2, Ordering::Relaxed);
        m.intake_depth.fetch_add(4, Ordering::Relaxed);
        m.devices.store(2, Ordering::Relaxed);
        m.workers_busy.fetch_add(1, Ordering::Relaxed);
        m.latency.record(5_000);
        m.stages.record_ns(pic_obs::Stage::Compute, 1_000);
        m.stages.add_energy_j(pic_obs::Stage::Compute, 1e-12);
        let f = m.frame();
        assert!(f.at_s >= 0.0);
        let counter = |n: &str| {
            f.counters
                .iter()
                .find(|(name, _)| *name == n)
                .map(|&(_, v)| v)
        };
        assert_eq!(counter("requests_completed"), Some(2));
        let gauge = |n: &str| f.gauges.iter().find(|(name, _)| name == n).map(|g| g.1);
        assert_eq!(gauge("intake_depth"), Some(4.0));
        assert_eq!(gauge("worker_busy_fraction"), Some(0.5));
        assert_eq!(f.stages.len(), pic_obs::STAGE_COUNT);
        assert_eq!(f.hists[0].0, "latency");
        assert_eq!(f.hists[0].1.count(), 1);
        if pic_obs::enabled() {
            let compute = &f.stages[pic_obs::Stage::Compute as usize];
            assert_eq!(compute.hist.count(), 1);
            assert!((compute.energy_j - 1e-12).abs() < 1e-24);
            assert!((m.stage_energy_total_j() - 1e-12).abs() < 1e-24);
        }
        // Renderers accept the frame end to end.
        assert!(f.to_prometheus("pic").contains("pic_requests_completed 2"));
        assert!(f.to_json().contains("\"requests_completed\":2"));
    }

    #[test]
    fn registry_recorder_is_shared_and_dumpable() {
        let m = MetricsRegistry::default();
        m.recorder.record(EventKind::QueueFullRejected, 9, 0);
        if pic_obs::enabled() {
            let events = m.recorder.dump();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].kind, EventKind::QueueFullRejected);
        }
        let f = m.frame();
        let counter = |n: &str| {
            f.counters
                .iter()
                .find(|(name, _)| *name == n)
                .map(|&(_, v)| v)
        };
        // The ring is far from full, so nothing has been dropped yet.
        assert_eq!(counter("recorder_dropped_events"), Some(0));
        assert!(counter("recorder_events").is_some());
    }

    /// Satellite stress test: 8 writer threads hammer one registry while
    /// a snapshotter reads concurrently. Every observed snapshot must
    /// have monotone counters, and every histogram snapshot's derived
    /// count must equal the sum of its bucket counts (the relaxed-race
    /// bug class the quantile clamp fix addresses).
    #[test]
    fn concurrent_snapshots_stay_monotone_and_self_consistent() {
        let m = Arc::new(MetricsRegistry::default());
        const WRITERS: usize = 8;
        const PER: u64 = 10_000;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..PER {
                        m.submitted.fetch_add(1, Ordering::Relaxed);
                        m.completed.fetch_add(1, Ordering::Relaxed);
                        m.tile_writes.fetch_add(1, Ordering::Relaxed);
                        m.latency.record(1 + (w as u64 * PER + i) % 100_000);
                        m.energy_j.add(1e-12);
                        m.stages.record_ns(pic_obs::Stage::Compute, 500);
                    }
                });
            }
            let m = Arc::clone(&m);
            scope.spawn(move || {
                let mut last = m.snapshot();
                for _ in 0..500 {
                    let snap = m.snapshot();
                    assert!(snap.submitted >= last.submitted, "monotone submitted");
                    assert!(snap.completed >= last.completed, "monotone completed");
                    assert!(snap.tile_writes >= last.tile_writes, "monotone writes");
                    // count == Σ bucket counts holds by construction in
                    // the histogram snapshot; quantiles must stay inside
                    // the recorded range even mid-race (the clamp fix).
                    let hist = m.latency.snapshot();
                    assert_eq!(
                        hist.count(),
                        hist.buckets.iter().sum::<u64>(),
                        "derived count equals bucket sum"
                    );
                    for q in [0.5, 0.99, 0.999, 1.0] {
                        let v = hist.quantile_s(q);
                        assert!(
                            v <= 262_144e-9 + 1e-12,
                            "q{q} = {v}s escaped the recorded range"
                        );
                    }
                    last = snap;
                }
            });
        });
        let end = m.snapshot();
        assert_eq!(end.submitted, (WRITERS as u64) * PER);
        assert_eq!(m.latency.snapshot().count(), (WRITERS as u64) * PER);
    }
}
