//! Concurrent submit-during-drain: clients race `Runtime` shutdown and
//! every in-flight request must resolve to exactly one terminal state —
//! `Ok`, or a typed `QueueFull` / `ShuttingDown` / `WorkerLost` — with
//! no hangs and no double sends, under both `fifo` and `residency`
//! admission.

use pic_runtime::{
    AdmissionPolicyKind, MatmulRequest, Runtime, RuntimeConfig, RuntimeError, TileShape,
    TiledMatrix,
};
use pic_tensor::TensorCoreConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn runtime(policy: AdmissionPolicyKind) -> Runtime {
    Runtime::start(RuntimeConfig {
        core: TensorCoreConfig::small_demo(),
        devices: 2,
        queue_depth: 32,
        max_batch: 4,
        worker_queue_depth: 2,
        policy,
        max_delay: Duration::from_millis(100),
    })
}

fn matrix(out: usize, inp: usize, seed: usize) -> Arc<TiledMatrix> {
    let codes: Vec<Vec<u32>> = (0..out)
        .map(|r| (0..inp).map(|c| ((seed + r + 2 * c) % 8) as u32).collect())
        .collect();
    Arc::new(TiledMatrix::from_codes(&codes, 3, TileShape::new(4, 4)))
}

/// Per-outcome tallies from one racing client fleet.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    queue_full: AtomicU64,
    shutting_down: AtomicU64,
    worker_lost: AtomicU64,
}

fn race_drain(policy: AdmissionPolicyKind) {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 60;
    let mut rt = runtime(policy);
    let models: Vec<Arc<TiledMatrix>> = (0..4).map(|s| matrix(8, 8, s)).collect();
    let outcomes = Outcomes::default();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let rt = &rt;
            let models = &models;
            let outcomes = &outcomes;
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let m = &models[(c + i) % models.len()];
                    let req = MatmulRequest::new(Arc::clone(m), vec![vec![0.5; m.in_dim()]]);
                    // Every submission resolves exactly once: either the
                    // submit call returns the typed error, or the handle
                    // yields the single response. A hang here fails the
                    // test by timeout; a double send is structurally
                    // impossible (the handle consumes a one-shot slot)
                    // and would trip the exact-count accounting below.
                    let outcome = rt.submit(req).and_then(|h| {
                        h.wait_timeout(Duration::from_secs(30))
                            .unwrap_or(Err(RuntimeError::WorkerLost))
                    });
                    let cell = match outcome {
                        Ok(resp) => {
                            assert_eq!(resp.outputs.len(), 1);
                            &outcomes.ok
                        }
                        Err(RuntimeError::QueueFull) => &outcomes.queue_full,
                        Err(RuntimeError::ShuttingDown) => &outcomes.shutting_down,
                        Err(RuntimeError::WorkerLost) => &outcomes.worker_lost,
                        Err(other) => panic!("unexpected terminal state: {other}"),
                    };
                    cell.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Let the fleet get traffic in flight, then drain through &self
        // mid-burst: submits race the intake closing.
        std::thread::sleep(Duration::from_millis(2));
        rt.drain();
        assert!(!rt.is_accepting(), "drain closes intake");
    });
    rt.shutdown();

    let ok = outcomes.ok.load(Ordering::Relaxed);
    let queue_full = outcomes.queue_full.load(Ordering::Relaxed);
    let shutting_down = outcomes.shutting_down.load(Ordering::Relaxed);
    let worker_lost = outcomes.worker_lost.load(Ordering::Relaxed);
    assert_eq!(
        ok + queue_full + shutting_down + worker_lost,
        (CLIENTS * PER_CLIENT) as u64,
        "every request resolves to exactly one terminal state"
    );
    // Everything the runtime accepted was served: accepted-but-dropped
    // work would surface as WorkerLost on a handle whose submit
    // succeeded, and the drain contract forbids that.
    assert_eq!(
        worker_lost, 0,
        "drain must flush accepted work, not abandon it"
    );
    let s = rt.metrics().snapshot();
    assert_eq!(s.completed, ok, "runtime accounting matches the clients'");
    assert_eq!(s.submitted, ok, "accepted == served under drain");
}

#[test]
fn submits_racing_drain_resolve_exactly_once_under_fifo() {
    race_drain(AdmissionPolicyKind::Fifo);
}

#[test]
fn submits_racing_drain_resolve_exactly_once_under_residency() {
    race_drain(AdmissionPolicyKind::ResidencyAware);
}

#[test]
fn drain_is_idempotent_and_permanent() {
    let rt = runtime(AdmissionPolicyKind::Fifo);
    assert!(rt.is_accepting());
    let m = matrix(4, 4, 0);
    let h = rt
        .submit(MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; 4]]))
        .expect("accepted before drain");
    rt.drain();
    rt.drain(); // idempotent
    assert!(!rt.is_accepting());
    assert!(matches!(
        rt.submit(MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; 4]])),
        Err(RuntimeError::ShuttingDown)
    ));
    assert!(matches!(
        rt.submit_blocking(MatmulRequest::new(m, vec![vec![0.5; 4]])),
        Err(RuntimeError::ShuttingDown)
    ));
    // Work accepted before the drain still completes.
    assert!(h.wait().is_ok(), "pre-drain work flushes");
}
