//! Pool-size determinism: serving through four devices is bit-identical
//! to serving through one, regardless of scheduling interleavings.

use pic_runtime::{
    MatmulRequest, OutputElement, Runtime, RuntimeConfig, TileExecutor, TileShape, TiledMatrix,
};
use pic_tensor::TensorCoreConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

/// A request against one of the shared matrices: (matrix index, input batch).
type WorkItem = (usize, Vec<Vec<f64>>);

fn mixed_workload(seed: u64) -> (Vec<Arc<TiledMatrix>>, Vec<WorkItem>) {
    let cfg = TensorCoreConfig::small_demo();
    let mut rng = StdRng::seed_from_u64(seed);
    let shapes = [(4, 4), (10, 7), (8, 12), (16, 16)];
    let matrices: Vec<Arc<TiledMatrix>> = shapes
        .iter()
        .map(|&(out, inp)| {
            let codes: Vec<Vec<u32>> = (0..out)
                .map(|_| (0..inp).map(|_| rng.gen_range(0..=7u32)).collect())
                .collect();
            Arc::new(TiledMatrix::from_codes(
                &codes,
                cfg.weight_bits,
                TileShape::new(cfg.rows, cfg.cols),
            ))
        })
        .collect();
    let requests = (0..48)
        .map(|_| {
            let which = rng.gen_range(0..matrices.len());
            let samples = rng.gen_range(1..=3);
            let inputs = (0..samples)
                .map(|_| {
                    (0..matrices[which].in_dim())
                        .map(|_| rng.gen_range(0.0..=1.0))
                        .collect()
                })
                .collect();
            (which, inputs)
        })
        .collect();
    (matrices, requests)
}

fn serve(
    devices: usize,
    matrices: &[Arc<TiledMatrix>],
    requests: &[WorkItem],
) -> Vec<Vec<Vec<OutputElement>>> {
    let rt = Runtime::start(RuntimeConfig {
        core: TensorCoreConfig::small_demo(),
        devices,
        queue_depth: 128,
        max_batch: 8,
        worker_queue_depth: 2,
        policy: pic_runtime::AdmissionPolicyKind::ResidencyAware,
        max_delay: std::time::Duration::from_millis(100),
    });
    let handles: Vec<_> = requests
        .iter()
        .map(|(which, inputs)| {
            rt.submit_blocking(MatmulRequest::new(
                Arc::clone(&matrices[*which]),
                inputs.clone(),
            ))
            .expect("accepted")
        })
        .collect();
    let outputs: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait().expect("completed").outputs)
        .collect();
    let snapshot = rt.metrics().snapshot();
    assert_eq!(
        snapshot.completed,
        requests.len() as u64,
        "no lost responses"
    );
    outputs
}

#[test]
fn pool_of_four_is_bit_identical_to_pool_of_one() {
    let (matrices, requests) = mixed_workload(7);
    let quad = serve(4, &matrices, &requests);
    let solo = serve(1, &matrices, &requests);
    assert_eq!(quad.len(), solo.len());
    for (i, (q, s)) in quad.iter().zip(&solo).enumerate() {
        assert_eq!(q, s, "request {i} differs between pool sizes");
    }
}

#[test]
fn runtime_matches_direct_executor_results() {
    let (matrices, requests) = mixed_workload(11);
    let served = serve(4, &matrices, &requests);
    let mut exec = TileExecutor::new(TensorCoreConfig::small_demo(), 0);
    for (i, ((which, inputs), got)) in requests.iter().zip(&served).enumerate() {
        let (want, _) = exec.execute(&matrices[*which], inputs).expect("reference");
        assert_eq!(got, &want, "request {i} differs from direct execution");
    }
}
