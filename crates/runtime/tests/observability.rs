//! End-to-end observability: stage attribution, energy reconciliation,
//! the periodic exporter, and the flight recorder against a live
//! runtime.
//!
//! Every test also compiles (and trivially passes) under `obs-off`,
//! proving the no-op instrumentation path serves identically.

use pic_obs::{EventKind, MemorySink, Stage};
use pic_runtime::{MatmulRequest, Runtime, RuntimeConfig, TileShape, TiledMatrix};
use pic_tensor::TensorCoreConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn runtime(devices: usize) -> Runtime {
    let mut config = RuntimeConfig::paper();
    config.core = TensorCoreConfig::small_demo();
    config.devices = devices;
    Runtime::start(config)
}

fn matrix(out: usize, inp: usize, seed: usize) -> Arc<TiledMatrix> {
    let codes: Vec<Vec<u32>> = (0..out)
        .map(|r| (0..inp).map(|c| ((seed + r + 2 * c) % 8) as u32).collect())
        .collect();
    Arc::new(TiledMatrix::from_codes(&codes, 3, TileShape::new(4, 4)))
}

fn serve(rt: &Runtime, m: &Arc<TiledMatrix>, requests: usize) {
    let handles: Vec<_> = (0..requests)
        .map(|i| {
            let x = vec![vec![((i % 5) as f64) / 5.0; m.in_dim()]];
            rt.submit_blocking(MatmulRequest::new(Arc::clone(m), x))
                .expect("accepted")
        })
        .collect();
    for h in handles {
        h.wait().expect("served");
    }
}

#[test]
fn stages_cover_the_request_lifecycle() {
    let mut rt = runtime(2);
    let m = matrix(10, 7, 0);
    serve(&rt, &m, 30);
    // Join every thread first: a worker records its Respond span just
    // after the last response lands, so reading earlier would race.
    rt.shutdown();
    if !pic_obs::enabled() {
        return;
    }
    let stages = &rt.metrics().stages;
    // Every served request passes submit and queue once.
    assert_eq!(stages.hist(Stage::Submit).count(), 30);
    assert_eq!(stages.hist(Stage::Queue).count(), 30);
    // Dispatch-side stages fire once per batch; batching makes the
    // batch count ≤ the request count, but never zero.
    let batches = stages.hist(Stage::Admission).count();
    assert!((1..=30).contains(&batches), "batches {batches}");
    assert_eq!(stages.hist(Stage::Respond).count(), batches);
    // The compute stages fire per tile pass on the worker threads (the
    // traced two-phase kernel), write only on residency misses.
    assert!(stages.hist(Stage::Compute).count() >= batches);
    assert_eq!(
        stages.hist(Stage::Compute).count(),
        stages.hist(Stage::Digitize).count(),
        "compute and digitize phases are paired"
    );
    assert!(stages.hist(Stage::Merge).count() > 0);
    let writes = stages.hist(Stage::Write).count();
    assert!(writes >= 1, "cold start must stream tiles");
    assert_eq!(writes, rt.metrics().snapshot().tile_writes);
}

#[test]
fn stage_energy_reconciles_with_the_totals() {
    let mut rt = runtime(2);
    for seed in 0..3 {
        let m = matrix(8, 8, seed);
        serve(&rt, &m, 10);
    }
    rt.shutdown();
    let s = rt.metrics().snapshot();
    assert!(s.energy_j > 0.0);
    if !pic_obs::enabled() {
        return;
    }
    let metrics = rt.metrics();
    // Write-stage energy is the write total exactly; compute + digitize
    // recompose the compute share; the three together recompose
    // `energy_j`. Tolerances cover f64 accumulation-order differences.
    let write = metrics.stages.energy_j(Stage::Write);
    assert!(
        (write - s.write_energy_j).abs() <= 1e-9 * s.write_energy_j.max(1e-30),
        "write stage {write} J vs counter {} J",
        s.write_energy_j
    );
    let staged = metrics.stage_energy_total_j();
    assert!(
        (staged - s.energy_j).abs() <= 1e-9 * s.energy_j,
        "stage sum {staged} J vs total {} J",
        s.energy_j
    );
    // Digitisation carries a real share of compute energy (the paper's
    // eoADC is a first-class power term), and the analog compute stage
    // keeps the rest.
    assert!(metrics.stages.energy_j(Stage::Digitize) > 0.0);
    assert!(metrics.stages.energy_j(Stage::Compute) > 0.0);
    // Stages that model no hardware energy stay at zero attribution.
    assert_eq!(metrics.stages.energy_j(Stage::Queue), 0.0);
    assert_eq!(metrics.stages.energy_j(Stage::Admission), 0.0);
}

#[test]
fn exporter_delivers_frames_and_deltas() {
    let mut rt = runtime(1);
    let sink = Arc::new(MemorySink::new());
    rt.spawn_exporter(Duration::from_millis(5), Arc::clone(&sink) as _);
    let m = matrix(4, 4, 1);
    serve(&rt, &m, 20);
    // Wait for at least one post-traffic export.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some((frame, _)) = sink.latest() {
            let completed = frame
                .counters
                .iter()
                .find(|(n, _)| *n == "requests_completed")
                .map(|&(_, v)| v);
            if completed == Some(20) {
                break;
            }
        }
        assert!(Instant::now() < deadline, "exporter never saw the traffic");
        std::thread::sleep(Duration::from_millis(2));
    }
    rt.shutdown();
    // The final frame (emitted on shutdown) reports the drained state:
    // cumulative totals intact, queues empty, and the delta consistent.
    let (frame, delta) = sink.latest().expect("final frame");
    let counter = |f: &pic_obs::Frame, n: &str| {
        f.counters
            .iter()
            .find(|(name, _)| *name == n)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter(&frame, "requests_completed"), 20);
    assert!(counter(&delta, "requests_completed") <= 20);
    let gauge = |f: &pic_obs::Frame, n: &str| {
        f.gauges
            .iter()
            .find(|(name, _)| name == n)
            .map(|g| g.1)
            .expect("gauge present")
    };
    assert_eq!(gauge(&frame, "intake_depth"), 0.0);
    assert_eq!(gauge(&frame, "pending_depth"), 0.0);
    assert_eq!(gauge(&frame, "devices_idle"), 1.0);
    if pic_obs::enabled() {
        assert_eq!(gauge(&frame, "devices_resident"), 1.0);
    }
    // Both renderers accept a live runtime frame.
    assert!(frame
        .to_prometheus("pic")
        .contains("pic_requests_completed 20"));
    assert!(frame.to_json().contains("\"requests_completed\":20"));
}

#[test]
fn first_deadline_miss_dumps_the_flight_recorder() {
    let mut rt = runtime(1);
    let sink = Arc::new(MemorySink::new());
    rt.spawn_exporter(Duration::from_millis(5), Arc::clone(&sink) as _);
    let m = matrix(4, 4, 2);
    serve(&rt, &m, 5);
    let expired = MatmulRequest::new(Arc::clone(&m), vec![vec![0.5; 4]])
        .with_deadline(Instant::now() - Duration::from_millis(1));
    // Dead on arrival rejects synchronously at submit — and still trips
    // the incident latch so the exporter dumps the ring.
    assert!(rt.submit(expired).is_err(), "expired deadline rejects");
    rt.shutdown();
    if !pic_obs::enabled() {
        return;
    }
    let events = sink.incidents();
    assert!(
        events.iter().any(|e| e.kind == EventKind::DeadlineExpired),
        "incident dump must contain the deadline miss: {events:?}"
    );
    // The ring captured the lead-up: the residency traffic before the
    // miss is in the same dump.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::ResidencyHit | EventKind::ResidencyMiss)));
}

#[test]
fn flight_recorder_sees_residency_and_stall_traffic() {
    let mut rt = runtime(1);
    let m = matrix(4, 4, 3);
    serve(&rt, &m, 10);
    rt.shutdown();
    if !pic_obs::enabled() {
        return;
    }
    let events = rt.metrics().recorder.dump();
    assert!(
        events.iter().any(|e| e.kind == EventKind::ResidencyMiss),
        "cold start must log a miss"
    );
    assert!(
        events.iter().any(|e| e.kind == EventKind::ResidencyHit),
        "repeat traffic must log hits"
    );
    assert!(events.iter().all(|e| match e.kind {
        EventKind::ResidencyHit | EventKind::ResidencyMiss => e.a == m.id(),
        _ => true,
    }));
}

#[test]
fn instrumented_serving_results_match_solo_execution() {
    // The traced two-phase kernel must be bit-identical to the untraced
    // interleaved kernel a solo executor runs.
    let rt = runtime(2);
    let m = matrix(10, 9, 4);
    let inputs: Vec<Vec<Vec<f64>>> = (0..8)
        .map(|i| {
            vec![(0..9)
                .map(|c| f64::from(((i + c) % 10) as u32) / 10.0)
                .collect()]
        })
        .collect();
    let handles: Vec<_> = inputs
        .iter()
        .map(|x| {
            rt.submit_blocking(MatmulRequest::new(Arc::clone(&m), x.clone()))
                .expect("accepted")
        })
        .collect();
    let mut solo = pic_runtime::TileExecutor::new(TensorCoreConfig::small_demo(), 99);
    for (x, h) in inputs.iter().zip(handles) {
        let resp = h.wait().expect("served");
        let (want, _) = solo.execute(&m, x).expect("reference");
        assert_eq!(resp.outputs, want, "traced kernel must stay bit-identical");
    }
}
