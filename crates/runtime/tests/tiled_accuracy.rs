//! Property tests: tiled execution agrees with the whole-matrix
//! ideal-quantised reference at arbitrary shapes.

use pic_runtime::{TileExecutor, TileShape, TiledMatrix};
use pic_tensor::{TensorCore, TensorCoreConfig};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Deterministic random weight codes and inputs from one seed.
fn workload(seed: u64, out: usize, inp: usize, max_code: u32) -> (Vec<Vec<u32>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let codes = (0..out)
        .map(|_| (0..inp).map(|_| rng.gen_range(0..=max_code)).collect())
        .collect();
    let x = (0..inp).map(|_| rng.gen_range(0.0..=1.0)).collect();
    (codes, x)
}

/// The whole-matrix reference: each output row's ideal normalised
/// partial product per tile, quantised to the ADC's `levels − 1` scale
/// and accumulated digitally — what a perfectly calibrated device chain
/// would produce.
fn reference_code_sums(m: &TiledMatrix, x: &[f64], levels: u32, max_code: u32) -> Vec<u32> {
    let shape = m.shape();
    let parts = m.split_input(x);
    (0..m.out_dim())
        .map(|gr| {
            let (br, lr) = (gr / shape.rows, gr % shape.rows);
            (0..m.block_cols())
                .map(|bc| {
                    let dot: f64 = m.tile(br, bc).codes()[lr]
                        .iter()
                        .zip(&parts[bc])
                        .map(|(&w, &xv)| f64::from(w) * xv)
                        .sum();
                    let ideal = dot / (shape.cols as f64 * f64::from(max_code));
                    ((ideal * f64::from(levels - 1)).round() as u32).min(levels - 1)
                })
                .sum()
        })
        .collect()
}

fn check_against_reference(seed: u64, out: usize, inp: usize) {
    let cfg = TensorCoreConfig::small_demo();
    let max_code = (1u32 << cfg.weight_bits) - 1;
    let levels = cfg.adc.channel_count() as u32;
    let (codes, x) = workload(seed, out, inp, max_code);
    let m = TiledMatrix::from_codes(&codes, cfg.weight_bits, TileShape::new(cfg.rows, cfg.cols));

    let mut exec = TileExecutor::new(cfg, 0);
    let (outputs, cost) = exec
        .execute(&m, std::slice::from_ref(&x))
        .expect("valid request");
    assert_eq!(outputs[0].len(), out);
    assert_eq!(cost.tiles, m.tile_count());

    let want = reference_code_sums(&m, &x, levels, max_code);
    // Each accumulated tile contributes at most one LSB of quantisation
    // disagreement (the calibrated read-out and the rounded reference can
    // land on opposite sides of a code edge), so the per-element bound is
    // one LSB per tile column.
    let lsb_budget = i64::try_from(m.block_cols()).expect("fits");
    let scale = cfg.cols as f64 / inp as f64 / f64::from(levels - 1);
    for (gr, (got, want)) in outputs[0].iter().zip(&want).enumerate() {
        let diff = i64::from(got.code_sum) - i64::from(*want);
        assert!(
            diff.abs() <= lsb_budget,
            "{out}×{inp} seed {seed} row {gr}: accumulated {} vs reference {want} \
             (budget {lsb_budget})",
            got.code_sum
        );
        let dequant = f64::from(got.code_sum) * scale;
        assert!(
            (got.value - dequant).abs() < 1e-12,
            "row {gr}: reported value {} vs dequantised {dequant}",
            got.value
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random shapes up to 64×64: the tiled, calibrated, digitally
    /// accumulated result stays within one LSB per accumulated tile of
    /// the whole-matrix ideal-quantised reference.
    #[test]
    fn tiled_matmul_tracks_ideal_reference(
        seed in 0u64..1_000_000,
        out in 1usize..=64,
        inp in 1usize..=64,
    ) {
        check_against_reference(seed, out, inp);
    }

    /// Shapes that fit the array in one tile reproduce the single-core
    /// digital read-out exactly — tiling must be a no-op overhead-wise.
    #[test]
    fn single_tile_shapes_match_the_core_exactly(seed in 0u64..1_000_000) {
        let cfg = TensorCoreConfig::small_demo();
        let max_code = (1u32 << cfg.weight_bits) - 1;
        let (codes, x) = workload(seed, cfg.rows, cfg.cols, max_code);
        let m = TiledMatrix::from_codes(
            &codes,
            cfg.weight_bits,
            TileShape::new(cfg.rows, cfg.cols),
        );
        let mut exec = TileExecutor::new(cfg, 0);
        let (outputs, cost) = exec.execute(&m, std::slice::from_ref(&x)).expect("valid request");
        prop_assert_eq!(cost.tiles, 1);

        let mut core = TensorCore::new(cfg);
        core.load_weight_codes(&codes);
        core.set_readout_gain(exec.core().readout_gain());
        let want = core.matvec(&x);
        let got: Vec<u16> = outputs[0].iter().map(|e| e.code_sum as u16).collect();
        prop_assert_eq!(got, want);
    }
}

/// The acceptance shape, pinned: a full 64×64 matmul on the 4×4 demo
/// core (256 streamed tiles) stays within the per-element LSB budget.
#[test]
fn full_64_by_64_decomposition_is_accurate() {
    check_against_reference(2025, 64, 64);
}

/// The same 256-tile case pinned code-for-code: these sums were captured
/// from the pre-flat-kernel executor (nested splits, per-tile batch
/// clones, per-call `convert_static`). The flat-buffer path must
/// reproduce every element bit-identically, not just within the LSB
/// budget.
#[test]
fn full_64_by_64_outputs_are_pinned() {
    const EXPECTED: [u32; 64] = [
        17, 20, 17, 16, 14, 17, 21, 15, 16, 18, 16, 13, 21, 15, 19, 20, 16, 16, 17, 20, 17, 20, 15,
        16, 13, 19, 18, 20, 17, 14, 21, 20, 17, 14, 18, 16, 21, 20, 20, 15, 21, 20, 16, 23, 19, 20,
        16, 19, 21, 16, 21, 18, 19, 23, 15, 15, 18, 20, 17, 20, 14, 16, 19, 19,
    ];
    let cfg = TensorCoreConfig::small_demo();
    let max_code = (1u32 << cfg.weight_bits) - 1;
    let (codes, x) = workload(2025, 64, 64, max_code);
    let m = TiledMatrix::from_codes(&codes, cfg.weight_bits, TileShape::new(cfg.rows, cfg.cols));
    let mut exec = TileExecutor::new(cfg, 0);
    let (outputs, _) = exec
        .execute(&m, std::slice::from_ref(&x))
        .expect("valid request");
    let got: Vec<u32> = outputs[0].iter().map(|e| e.code_sum).collect();
    assert_eq!(got, EXPECTED);
}
