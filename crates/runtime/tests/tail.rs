//! Regression pin for the closed-loop tail stall (EXPERIMENTS.md
//! §SERVING-NET).
//!
//! Root cause: every pSRAM tile write re-ran the full per-bitcell
//! write-transient co-simulation (~100 ms of ODE integration per
//! tile), so any request that missed residency stalled the worker —
//! a window-1 closed loop showed p50 ≈ 0 ms but p99 > 100 ms. The fix
//! replays cached flip transients (`pic_psram::WriteTransientCache`),
//! bit-identical to the full simulation, making writes microsecond-
//! scale. This test drives the same window-1 closed loop that exposed
//! the stall and pins the tail well below the failure signature.

use pic_runtime::{
    AdmissionPolicyKind, MatmulRequest, ResponseHandle, Runtime, RuntimeConfig, TileShape,
    TiledMatrix,
};
use pic_tensor::TensorCoreConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pre-fix, a window-1 closed loop over residency-missing requests had
/// p99 > 100 ms (one full write-transient simulation per missed tile).
/// Post-fix it sits near 2 ms in release builds; 50 ms leaves room for
/// debug builds and loaded CI hosts while staying far below the
/// failure signature.
const TAIL_BOUND: Duration = Duration::from_millis(50);

#[test]
fn window_one_closed_loop_tail_stays_below_the_stall_signature() {
    let config = RuntimeConfig {
        core: TensorCoreConfig::paper(),
        devices: 2,
        queue_depth: 64,
        max_batch: 4,
        worker_queue_depth: 2,
        policy: AdmissionPolicyKind::ResidencyAware,
        max_delay: Duration::from_millis(10),
    };
    let shape = TileShape::new(config.core.rows, config.core.cols);
    // More distinct single-tile models than comfortably stay hot, so a
    // steady share of requests misses residency and pays a tile write
    // on the critical path — exactly the pre-fix stall trigger.
    let models: Vec<Arc<TiledMatrix>> = (0..8)
        .map(|m| {
            let codes: Vec<Vec<u32>> = (0..config.core.rows)
                .map(|r| {
                    (0..config.core.cols)
                        .map(|c| ((m + r + c) % 8) as u32)
                        .collect()
                })
                .collect();
            Arc::new(TiledMatrix::from_codes(&codes, 3, shape))
        })
        .collect();

    let rt = Runtime::start(config);
    let inputs = vec![vec![0.5; config.core.cols]];
    let mut slowest = Duration::ZERO;
    for i in 0..120 {
        let started = Instant::now();
        let resp = rt
            .submit_blocking(MatmulRequest::new(
                Arc::clone(&models[(i * 3) % models.len()]),
                inputs.clone(),
            ))
            .and_then(ResponseHandle::wait)
            .expect("window-1 request serves");
        assert_eq!(resp.outputs.len(), 1);
        slowest = slowest.max(started.elapsed());
    }
    let writes = rt.metrics().snapshot().tile_writes;
    assert!(
        writes >= 8,
        "the loop must actually exercise the write path, got {writes} tile writes"
    );
    assert!(
        slowest < TAIL_BOUND,
        "window-1 tail regressed: slowest request took {slowest:?} \
         (bound {TAIL_BOUND:?}; the pre-fix write-transient stall was >100 ms)"
    );
}
