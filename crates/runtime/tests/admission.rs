//! Property tests on admission policies: the starvation bound, deadline
//! safety within slack, FIFO degeneration, and cross-policy
//! bit-identity of served results (order-independence of the digital
//! post-ADC accumulation).

use pic_runtime::{
    AdmissionPolicy, AdmissionPolicyKind, DispatchContext, GroupView, MatmulRequest,
    ResidencyAware, Runtime, RuntimeConfig, TileShape, TiledMatrix,
};
use pic_tensor::TensorCoreConfig;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_DELAY: Duration = Duration::from_millis(200);

/// A synthetic pending-group population at a fixed observation instant.
/// `deadline_ms[i]`: 0 = no deadline, else deadline at `t0 + that - 250 ms`
/// (so some groups are urgent, some comfortable).
fn build_views(t0: Instant, deadline_ms: &[u32]) -> Vec<GroupView> {
    deadline_ms
        .iter()
        .enumerate()
        .map(|(i, &d)| GroupView {
            matrix_id: 100 + i as u64,
            head_seq: i as u64,
            len: 1 + i % 3,
            oldest_submitted_at: t0,
            earliest_deadline: (d > 0)
                .then(|| t0 + Duration::from_millis(u64::from(d)) - Duration::from_millis(250)),
        })
        .collect()
}

fn context<'a>(
    affinity: &'a HashMap<u64, usize>,
    backlog: &'a [usize],
    last: Option<u64>,
) -> DispatchContext<'a> {
    DispatchContext {
        worker_backlog: backlog,
        affinity,
        sticky_limit: 16,
        last_dispatched: last,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Starvation bound: once the arrival-order front group has been the
    /// front for `max_delay`, ResidencyAware serves it — no matter how
    /// warm or urgent the rest of the population looks.
    #[test]
    fn residency_never_starves_the_front_past_max_delay(
        deadlines in proptest::collection::vec(0u32..800, 2..7),
        warm_mask in proptest::collection::vec(0u32..2, 2..7),
    ) {
        let t0 = Instant::now();
        let views = build_views(t0, &deadlines);
        let affinity: HashMap<u64, usize> = views
            .iter()
            .zip(&warm_mask)
            .filter(|(_, &w)| w == 1)
            .map(|(v, _)| (v.matrix_id, 0usize))
            .collect();
        let backlog = [0usize];
        let last = views.last().map(|v| v.matrix_id);
        let ctx = context(&affinity, &backlog, last);
        let mut policy = ResidencyAware::new(MAX_DELAY);
        // First observation arms the starvation clock for the front…
        let _ = policy.select(&views, &ctx, t0);
        // …and past max_delay the front must win unconditionally.
        let late = t0 + MAX_DELAY + Duration::from_millis(1);
        prop_assert_eq!(policy.select(&views, &ctx, late), 0);
    }

    /// Deadline safety: while nothing is starving, any group due within
    /// the reorder horizon is served most-urgent-first — a group with
    /// slack is never dispatched ahead of one without.
    #[test]
    fn residency_serves_the_most_urgent_group_within_slack(
        deadlines in proptest::collection::vec(0u32..800, 2..7),
        warm_mask in proptest::collection::vec(0u32..2, 2..7),
    ) {
        let t0 = Instant::now();
        let views = build_views(t0, &deadlines);
        let affinity: HashMap<u64, usize> = views
            .iter()
            .zip(&warm_mask)
            .filter(|(_, &w)| w == 1)
            .map(|(v, _)| (v.matrix_id, 0usize))
            .collect();
        let backlog = [0usize];
        let ctx = context(&affinity, &backlog, views.last().map(|v| v.matrix_id));
        let mut policy = ResidencyAware::new(MAX_DELAY);
        let picked = policy.select(&views, &ctx, t0);
        let horizon = t0 + MAX_DELAY;
        let urgent: Vec<&GroupView> = views
            .iter()
            .filter(|v| v.earliest_deadline.is_some_and(|d| d <= horizon))
            .collect();
        if let Some(most_urgent) = urgent
            .iter()
            .min_by_key(|v| (v.earliest_deadline, v.head_seq))
        {
            prop_assert_eq!(
                views[picked].matrix_id,
                most_urgent.matrix_id,
                "urgent deadlines dispatch most-urgent-first"
            );
        }
    }

    /// With no deadlines and no warm workers, ResidencyAware degenerates
    /// to strict FIFO (and Fifo itself is FIFO by construction).
    #[test]
    fn residency_without_context_is_fifo(
        group_count in 1usize..7,
    ) {
        let t0 = Instant::now();
        let views = build_views(t0, &vec![0u32; group_count]);
        let affinity = HashMap::new();
        let backlog = [0usize];
        let ctx = context(&affinity, &backlog, None);
        let mut policy = ResidencyAware::new(MAX_DELAY);
        prop_assert_eq!(policy.select(&views, &ctx, t0), 0);
        let mut fifo = AdmissionPolicyKind::Fifo.build(MAX_DELAY);
        prop_assert_eq!(fifo.select(&views, &ctx, t0), 0);
    }

    /// EDF picks the globally tightest deadline; deadline-free groups
    /// rank behind every deadlined one.
    #[test]
    fn edf_picks_the_tightest_deadline(
        deadlines in proptest::collection::vec(0u32..800, 1..7),
    ) {
        let t0 = Instant::now();
        let views = build_views(t0, &deadlines);
        let affinity = HashMap::new();
        let backlog = [0usize];
        let ctx = context(&affinity, &backlog, None);
        let mut edf = AdmissionPolicyKind::EarliestDeadlineFirst.build(MAX_DELAY);
        let picked = &views[edf.select(&views, &ctx, t0)];
        match views
            .iter()
            .filter(|v| v.earliest_deadline.is_some())
            .min_by_key(|v| (v.earliest_deadline, v.head_seq))
        {
            Some(want) => prop_assert_eq!(picked.matrix_id, want.matrix_id),
            None => prop_assert_eq!(picked.head_seq, 0, "all deadline-free: FIFO"),
        }
    }
}

/// A request against one of the shared matrices: (matrix index, inputs).
type WorkItem = (usize, Vec<Vec<f64>>);

/// A small mixed workload: a few shared matrices, Zipf-flavoured skew.
fn workload(seed: u64) -> (Vec<Arc<TiledMatrix>>, Vec<WorkItem>) {
    let cfg = TensorCoreConfig::small_demo();
    let mut rng = StdRng::seed_from_u64(seed);
    let shapes = [(4, 4), (4, 4), (10, 7), (8, 8)];
    let matrices: Vec<Arc<TiledMatrix>> = shapes
        .iter()
        .map(|&(out, inp)| {
            let codes: Vec<Vec<u32>> = (0..out)
                .map(|_| (0..inp).map(|_| rng.gen_range(0..=7u32)).collect())
                .collect();
            Arc::new(TiledMatrix::from_codes(
                &codes,
                cfg.weight_bits,
                TileShape::new(cfg.rows, cfg.cols),
            ))
        })
        .collect();
    let requests = (0..36)
        .map(|_| {
            // Skew toward the first two matrices, like real serving.
            let which = if rng.gen_range(0..10) < 7 {
                rng.gen_range(0..2)
            } else {
                rng.gen_range(2..matrices.len())
            };
            let inputs = (0..rng.gen_range(1..=2))
                .map(|_| {
                    (0..matrices[which].in_dim())
                        .map(|_| rng.gen_range(0.0..=1.0))
                        .collect()
                })
                .collect();
            (which, inputs)
        })
        .collect();
    (matrices, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// End-to-end: every policy serves the same workload with
    /// bit-identical per-request outputs (the digital accumulation is
    /// order-independent), and ResidencyAware never expires a request
    /// whose deadline had comfortable slack at admission.
    #[test]
    fn policies_are_bit_identical_and_deadline_safe(seed in 0u64..1000) {
        let (matrices, requests) = workload(seed);
        let mut per_policy: Vec<Vec<Vec<Vec<pic_runtime::OutputElement>>>> = Vec::new();
        for kind in AdmissionPolicyKind::ALL {
            let rt = Runtime::start(RuntimeConfig {
                core: TensorCoreConfig::small_demo(),
                devices: 2,
                queue_depth: 64,
                max_batch: 4,
                worker_queue_depth: 2,
                policy: kind,
                max_delay: Duration::from_millis(50),
            });
            let handles: Vec<_> = requests
                .iter()
                .map(|(which, inputs)| {
                    // Slack far beyond the drain time of 36 tiny requests:
                    // reordering must never turn it into a miss.
                    let req = MatmulRequest::new(Arc::clone(&matrices[*which]), inputs.clone())
                        .with_deadline(Instant::now() + Duration::from_secs(120));
                    rt.submit_blocking(req).expect("accepted")
                })
                .collect();
            let outputs: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    h.wait()
                        .unwrap_or_else(|e| panic!("{} lost a slack-rich request: {e}", kind.label()))
                        .outputs
                })
                .collect();
            let s = rt.metrics().snapshot();
            prop_assert_eq!(s.rejected_deadline, 0, "no deadline miss under {}", kind.label());
            prop_assert_eq!(s.completed, requests.len() as u64);
            per_policy.push(outputs);
        }
        prop_assert_eq!(&per_policy[0], &per_policy[1], "fifo vs residency");
        prop_assert_eq!(&per_policy[0], &per_policy[2], "fifo vs edf");
    }
}
