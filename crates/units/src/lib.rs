//! Typed physical quantities for photonic/electronic co-simulation.
//!
//! Every quantity that crosses a module boundary in this workspace is a
//! newtype over `f64` ([C-NEWTYPE]): a [`Wavelength`] cannot be confused
//! with a [`Voltage`], and optical power carries its dBm/mW conversion with
//! it instead of leaving the log/linear distinction to comments.
//!
//! # Examples
//!
//! ```
//! use pic_units::{OpticalPower, Wavelength};
//!
//! let bias = OpticalPower::from_dbm(-20.0);
//! assert!((bias.as_milliwatts() - 0.01).abs() < 1e-12);
//!
//! let o_band = Wavelength::from_nanometers(1310.0);
//! assert!(o_band.frequency().as_hertz() > 2.0e14);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[macro_use]
mod macros;

pub mod constants;
mod electrical;
mod energy;
mod power;
mod time;
mod wavelength;

pub use electrical::{Capacitance, Charge, Current, Resistance, Voltage};
pub use energy::Energy;
pub use power::{ElectricalPower, OpticalPower};
pub use time::{Frequency, Seconds};
pub use wavelength::Wavelength;

/// Ratio of two like quantities; dimensionless, convertible to decibels.
///
/// ```
/// use pic_units::Ratio;
/// let half = Ratio::new(0.5);
/// assert!((half.as_db() + 3.0103).abs() < 1e-3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Ratio(f64);

impl Ratio {
    /// Unity ratio (0 dB).
    pub const UNITY: Ratio = Ratio(1.0);
    /// Zero ratio (fully extinguished).
    pub const ZERO: Ratio = Ratio(0.0);

    /// Creates a ratio from a linear value.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is negative or not finite.
    #[must_use]
    pub fn new(linear: f64) -> Self {
        assert!(
            linear.is_finite() && linear >= 0.0,
            "ratio must be finite and non-negative, got {linear}"
        );
        Ratio(linear)
    }

    /// Creates a ratio from a decibel value.
    #[must_use]
    pub fn from_db(db: f64) -> Self {
        Ratio(10f64.powf(db / 10.0))
    }

    /// Linear value of the ratio.
    #[must_use]
    pub fn as_linear(self) -> f64 {
        self.0
    }

    /// Decibel value of the ratio (`-inf` for zero).
    #[must_use]
    pub fn as_db(self) -> f64 {
        10.0 * self.0.log10()
    }

    /// Clamps the ratio into `[0, 1]`, useful for passive transmissions.
    #[must_use]
    pub fn clamp_passive(self) -> Self {
        Ratio(self.0.clamp(0.0, 1.0))
    }
}

impl std::ops::Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 * rhs.0)
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ({:.2} dB)", self.0, self.as_db())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_db_round_trip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0] {
            let r = Ratio::from_db(db);
            assert!((r.as_db() - db).abs() < 1e-9);
        }
    }

    #[test]
    fn ratio_multiplication_adds_db() {
        let a = Ratio::from_db(-3.0);
        let b = Ratio::from_db(-7.0);
        assert!(((a * b).as_db() + 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn ratio_rejects_negative() {
        let _ = Ratio::new(-0.1);
    }

    #[test]
    fn clamp_passive_bounds() {
        assert_eq!(Ratio::new(1.5).clamp_passive().as_linear(), 1.0);
        assert_eq!(Ratio::new(0.5).clamp_passive().as_linear(), 0.5);
    }
}
