//! Electrical quantities: voltage, current, charge, capacitance, resistance.

use crate::{Energy, Seconds};

quantity! {
    /// Electrical potential.
    ///
    /// ```
    /// use pic_units::Voltage;
    /// let vdd = Voltage::from_volts(1.0);
    /// assert_eq!((vdd * 0.5).as_volts(), 0.5);
    /// ```
    Voltage, base = volts, from = from_volts, as_ = as_volts, unit = "V"
}

quantity! {
    /// Electrical current.
    ///
    /// ```
    /// use pic_units::Current;
    /// let photocurrent = Current::from_microamps(12.0);
    /// assert!((photocurrent.as_amps() - 12.0e-6).abs() < 1e-18);
    /// ```
    Current, base = amps, from = from_amps, as_ = as_amps, unit = "A"
}

quantity! {
    /// Electrical charge.
    Charge, base = coulombs, from = from_coulombs, as_ = as_coulombs, unit = "C"
}

quantity! {
    /// Capacitance.
    ///
    /// ```
    /// use pic_units::Capacitance;
    /// let node = Capacitance::from_femtofarads(2.0);
    /// assert!((node.as_farads() - 2.0e-15).abs() < 1e-27);
    /// ```
    Capacitance, base = farads, from = from_farads, as_ = as_farads, unit = "F"
}

quantity! {
    /// Resistance.
    Resistance, base = ohms, from = from_ohms, as_ = as_ohms, unit = "Ω"
}

impl Voltage {
    /// Creates a voltage from millivolts.
    #[must_use]
    pub fn from_millivolts(mv: f64) -> Self {
        Voltage::from_volts(mv * 1e-3)
    }

    /// Value in millivolts.
    #[must_use]
    pub fn as_millivolts(self) -> f64 {
        self.as_volts() * 1e3
    }
}

impl Current {
    /// Creates a current from microamps.
    #[must_use]
    pub fn from_microamps(ua: f64) -> Self {
        Current::from_amps(ua * 1e-6)
    }

    /// Value in microamps.
    #[must_use]
    pub fn as_microamps(self) -> f64 {
        self.as_amps() * 1e6
    }

    /// Creates a current from milliamps.
    #[must_use]
    pub fn from_milliamps(ma: f64) -> Self {
        Current::from_amps(ma * 1e-3)
    }

    /// Charge delivered over `dt`.
    #[must_use]
    pub fn charge_over(self, dt: Seconds) -> Charge {
        Charge::from_coulombs(self.as_amps() * dt.as_seconds())
    }
}

impl Capacitance {
    /// Creates a capacitance from femtofarads.
    #[must_use]
    pub fn from_femtofarads(ff: f64) -> Self {
        Capacitance::from_farads(ff * 1e-15)
    }

    /// Value in femtofarads.
    #[must_use]
    pub fn as_femtofarads(self) -> f64 {
        self.as_farads() * 1e15
    }

    /// Energy stored at voltage `v`: `½CV²`.
    #[must_use]
    pub fn stored_energy(self, v: Voltage) -> Energy {
        Energy::from_joules(0.5 * self.as_farads() * v.as_volts() * v.as_volts())
    }

    /// Voltage change produced by net current `i` over `dt`.
    ///
    /// # Panics
    ///
    /// Panics if the capacitance is zero.
    #[must_use]
    pub fn voltage_delta(self, i: Current, dt: Seconds) -> Voltage {
        assert!(self.as_farads() > 0.0, "capacitance must be positive");
        Voltage::from_volts(i.as_amps() * dt.as_seconds() / self.as_farads())
    }
}

impl std::ops::Div<Resistance> for Voltage {
    type Output = Current;
    fn div(self, rhs: Resistance) -> Current {
        Current::from_amps(self.as_volts() / rhs.as_ohms())
    }
}

impl std::ops::Mul<Current> for Voltage {
    type Output = crate::ElectricalPower;
    fn mul(self, rhs: Current) -> crate::ElectricalPower {
        crate::ElectricalPower::from_watts(self.as_volts() * rhs.as_amps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law() {
        let i = Voltage::from_volts(1.0) / Resistance::from_ohms(1000.0);
        assert!((i.as_amps() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn capacitor_charging() {
        // 10 µA into 2 fF for 1 ps → 5 mV
        let dv = Capacitance::from_femtofarads(2.0).voltage_delta(
            Current::from_microamps(10.0),
            Seconds::from_picoseconds(1.0),
        );
        assert!((dv.as_millivolts() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn stored_energy_quadratic() {
        let c = Capacitance::from_femtofarads(4.0);
        let e1 = c.stored_energy(Voltage::from_volts(1.0));
        let e2 = c.stored_energy(Voltage::from_volts(2.0));
        assert!((e2.as_joules() / e1.as_joules() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn power_from_iv() {
        let p = Voltage::from_volts(1.8) * Current::from_milliamps(2.0);
        assert!((p.as_watts() - 3.6e-3).abs() < 1e-12);
    }

    #[test]
    fn quantity_ordering_and_sum() {
        let a = Voltage::from_volts(0.3);
        let b = Voltage::from_volts(0.7);
        assert!(a < b);
        let total: Voltage = [a, b].into_iter().sum();
        assert!((total.as_volts() - 1.0).abs() < 1e-12);
    }
}
