//! Optical wavelength quantity.

use crate::constants::SPEED_OF_LIGHT;
use crate::Frequency;

quantity! {
    /// Vacuum wavelength of an optical carrier.
    ///
    /// ```
    /// use pic_units::Wavelength;
    /// let ch = Wavelength::from_nanometers(1310.0);
    /// assert!((ch.as_micrometers() - 1.31).abs() < 1e-12);
    /// ```
    Wavelength, base = meters, from = from_meters, as_ = as_meters, unit = "m"
}

impl Wavelength {
    /// Creates a wavelength from nanometers.
    #[must_use]
    pub fn from_nanometers(nm: f64) -> Self {
        Wavelength::from_meters(nm * 1e-9)
    }

    /// Value in nanometers.
    #[must_use]
    pub fn as_nanometers(self) -> f64 {
        self.as_meters() * 1e9
    }

    /// Creates a wavelength from micrometers.
    #[must_use]
    pub fn from_micrometers(um: f64) -> Self {
        Wavelength::from_meters(um * 1e-6)
    }

    /// Value in micrometers.
    #[must_use]
    pub fn as_micrometers(self) -> f64 {
        self.as_meters() * 1e6
    }

    /// Optical carrier frequency `c/λ`.
    ///
    /// # Panics
    ///
    /// Panics if the wavelength is zero or negative.
    #[must_use]
    pub fn frequency(self) -> Frequency {
        assert!(self.as_meters() > 0.0, "wavelength must be positive");
        Frequency::from_hertz(SPEED_OF_LIGHT / self.as_meters())
    }

    /// Detuning of `self` from `reference` in nanometers (signed).
    #[must_use]
    pub fn detuning_nm(self, reference: Wavelength) -> f64 {
        self.as_nanometers() - reference.as_nanometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn o_band_frequency() {
        let f = Wavelength::from_nanometers(1310.0).frequency();
        // ≈ 228.85 THz
        assert!((f.as_hertz() / 1e12 - 228.85).abs() < 0.1);
    }

    #[test]
    fn detuning_sign() {
        let a = Wavelength::from_nanometers(1312.33);
        let b = Wavelength::from_nanometers(1310.0);
        assert!((a.detuning_nm(b) - 2.33).abs() < 1e-9);
        assert!((b.detuning_nm(a) + 2.33).abs() < 1e-9);
    }
}
