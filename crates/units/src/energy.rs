//! Energy quantity.

use crate::{ElectricalPower, Seconds};

quantity! {
    /// Energy.
    ///
    /// ```
    /// use pic_units::Energy;
    /// let per_switch = Energy::from_picojoules(0.5);
    /// assert!((per_switch.as_joules() - 0.5e-12).abs() < 1e-24);
    /// ```
    Energy, base = joules, from = from_joules, as_ = as_joules, unit = "J"
}

impl Energy {
    /// Creates an energy from picojoules.
    #[must_use]
    pub fn from_picojoules(pj: f64) -> Self {
        Energy::from_joules(pj * 1e-12)
    }

    /// Value in picojoules.
    #[must_use]
    pub fn as_picojoules(self) -> f64 {
        self.as_joules() * 1e12
    }

    /// Creates an energy from femtojoules.
    #[must_use]
    pub fn from_femtojoules(fj: f64) -> Self {
        Energy::from_joules(fj * 1e-15)
    }

    /// Value in femtojoules.
    #[must_use]
    pub fn as_femtojoules(self) -> f64 {
        self.as_joules() * 1e15
    }

    /// Average power when this energy is spent every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or negative.
    #[must_use]
    pub fn average_power(self, period: Seconds) -> ElectricalPower {
        assert!(period.as_seconds() > 0.0, "period must be positive");
        ElectricalPower::from_watts(self.as_joules() / period.as_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frequency;

    #[test]
    fn average_power_round_trip() {
        // 2.32 pJ at 8 GS/s → 18.56 mW.
        let p =
            Energy::from_picojoules(2.32).average_power(Frequency::from_gigahertz(8.0).period());
        assert!((p.as_milliwatts() - 18.56).abs() < 1e-9);
    }

    #[test]
    fn femtojoule_conversions() {
        assert!((Energy::from_femtojoules(500.0).as_picojoules() - 0.5).abs() < 1e-12);
    }
}
