//! Optical and electrical power quantities.

use crate::constants::WALL_PLUG_EFFICIENCY;
use crate::{Current, Energy, Ratio, Seconds};

quantity! {
    /// Optical power carried by light in a waveguide or fibre.
    ///
    /// Stored linearly in watts; dBm conversions are provided because the
    /// paper specifies every source in dBm.
    ///
    /// ```
    /// use pic_units::OpticalPower;
    /// let write = OpticalPower::from_dbm(0.0);
    /// assert!((write.as_milliwatts() - 1.0).abs() < 1e-12);
    /// ```
    OpticalPower, base = watts, from = from_watts, as_ = as_watts, unit = "W (optical)"
}

quantity! {
    /// Electrical power drawn from a supply.
    ElectricalPower, base = watts, from = from_watts, as_ = as_watts, unit = "W"
}

impl OpticalPower {
    /// Creates an optical power from a dBm value (0 dBm = 1 mW).
    #[must_use]
    pub fn from_dbm(dbm: f64) -> Self {
        OpticalPower::from_watts(1e-3 * 10f64.powf(dbm / 10.0))
    }

    /// Value in dBm (`-inf` for zero power).
    #[must_use]
    pub fn as_dbm(self) -> f64 {
        10.0 * (self.as_watts() / 1e-3).log10()
    }

    /// Creates an optical power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        OpticalPower::from_watts(mw * 1e-3)
    }

    /// Value in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.as_watts() * 1e3
    }

    /// Creates an optical power from microwatts.
    #[must_use]
    pub fn from_microwatts(uw: f64) -> Self {
        OpticalPower::from_watts(uw * 1e-6)
    }

    /// Value in microwatts.
    #[must_use]
    pub fn as_microwatts(self) -> f64 {
        self.as_watts() * 1e6
    }

    /// Attenuates the power by a passive transmission ratio.
    #[must_use]
    pub fn attenuate(self, transmission: Ratio) -> Self {
        OpticalPower::from_watts(self.as_watts() * transmission.clamp_passive().as_linear())
    }

    /// Electrical wall-plug power required to generate this optical power
    /// with a laser of efficiency `wall_plug` (see
    /// [`constants::WALL_PLUG_EFFICIENCY`](crate::constants::WALL_PLUG_EFFICIENCY)).
    ///
    /// # Panics
    ///
    /// Panics if `wall_plug` is not in `(0, 1]`.
    #[must_use]
    pub fn wall_plug_power(self, wall_plug: f64) -> ElectricalPower {
        assert!(
            wall_plug > 0.0 && wall_plug <= 1.0,
            "wall-plug efficiency must be in (0, 1], got {wall_plug}"
        );
        ElectricalPower::from_watts(self.as_watts() / wall_plug)
    }

    /// Wall-plug power using the paper's assumed 0.23 efficiency.
    #[must_use]
    pub fn wall_plug_power_default(self) -> ElectricalPower {
        self.wall_plug_power(WALL_PLUG_EFFICIENCY)
    }

    /// Photocurrent produced by a detector of the given responsivity (A/W).
    #[must_use]
    pub fn photocurrent(self, responsivity_a_per_w: f64) -> Current {
        Current::from_amps(self.as_watts() * responsivity_a_per_w)
    }
}

impl ElectricalPower {
    /// Creates an electrical power from milliwatts.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        ElectricalPower::from_watts(mw * 1e-3)
    }

    /// Value in milliwatts.
    #[must_use]
    pub fn as_milliwatts(self) -> f64 {
        self.as_watts() * 1e3
    }

    /// Value in microwatts.
    #[must_use]
    pub fn as_microwatts(self) -> f64 {
        self.as_watts() * 1e6
    }

    /// Energy consumed over a duration.
    #[must_use]
    pub fn energy_over(self, dt: Seconds) -> Energy {
        Energy::from_joules(self.as_watts() * dt.as_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_round_trip() {
        for dbm in [-20.0, -3.0, 0.0, 10.0] {
            let p = OpticalPower::from_dbm(dbm);
            assert!((p.as_dbm() - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_bias_power_is_ten_microwatts() {
        let bias = OpticalPower::from_dbm(-20.0);
        assert!((bias.as_microwatts() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wall_plug_scales_power() {
        let p = OpticalPower::from_milliwatts(2.3).wall_plug_power_default();
        assert!((p.as_milliwatts() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn attenuation_is_passive() {
        let p = OpticalPower::from_milliwatts(1.0).attenuate(Ratio::new(2.0));
        assert!(p.as_milliwatts() <= 1.0 + 1e-12);
    }

    #[test]
    fn photocurrent_linear_in_power() {
        let i = OpticalPower::from_microwatts(10.0).photocurrent(0.9);
        assert!((i.as_microamps() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn energy_integration() {
        // 18.58 mW for 125 ps ≈ 2.32 pJ (paper's eoADC energy/conversion).
        let e =
            ElectricalPower::from_milliwatts(18.58).energy_over(Seconds::from_picoseconds(125.0));
        assert!((e.as_picojoules() - 2.3225).abs() < 1e-3);
    }
}
