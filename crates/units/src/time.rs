//! Time and frequency quantities.

quantity! {
    /// A duration in seconds.
    ///
    /// ```
    /// use pic_units::Seconds;
    /// let write_pulse = Seconds::from_picoseconds(50.0);
    /// assert!((write_pulse.as_seconds() - 50.0e-12).abs() < 1e-24);
    /// ```
    Seconds, base = seconds, from = from_seconds, as_ = as_seconds, unit = "s"
}

quantity! {
    /// A rate in hertz.
    ///
    /// ```
    /// use pic_units::Frequency;
    /// let adc_rate = Frequency::from_gigahertz(8.0);
    /// assert!((adc_rate.period().as_picoseconds() - 125.0).abs() < 1e-9);
    /// ```
    Frequency, base = hertz, from = from_hertz, as_ = as_hertz, unit = "Hz"
}

impl Seconds {
    /// Creates a duration from picoseconds.
    #[must_use]
    pub fn from_picoseconds(ps: f64) -> Self {
        Seconds::from_seconds(ps * 1e-12)
    }

    /// Value in picoseconds.
    #[must_use]
    pub fn as_picoseconds(self) -> f64 {
        self.as_seconds() * 1e12
    }

    /// Creates a duration from nanoseconds.
    #[must_use]
    pub fn from_nanoseconds(ns: f64) -> Self {
        Seconds::from_seconds(ns * 1e-9)
    }

    /// Value in nanoseconds.
    #[must_use]
    pub fn as_nanoseconds(self) -> f64 {
        self.as_seconds() * 1e9
    }

    /// The repetition rate whose period is this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero or negative.
    #[must_use]
    pub fn rate(self) -> Frequency {
        assert!(self.as_seconds() > 0.0, "period must be positive");
        Frequency::from_hertz(1.0 / self.as_seconds())
    }
}

impl Frequency {
    /// Creates a frequency from gigahertz.
    #[must_use]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Frequency::from_hertz(ghz * 1e9)
    }

    /// Value in gigahertz.
    #[must_use]
    pub fn as_gigahertz(self) -> f64 {
        self.as_hertz() * 1e-9
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn from_megahertz(mhz: f64) -> Self {
        Frequency::from_hertz(mhz * 1e6)
    }

    /// The period of one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[must_use]
    pub fn period(self) -> Seconds {
        assert!(self.as_hertz() > 0.0, "frequency must be positive");
        Seconds::from_seconds(1.0 / self.as_hertz())
    }

    /// Angular frequency `2πf` in rad/s.
    #[must_use]
    pub fn angular(self) -> f64 {
        2.0 * std::f64::consts::PI * self.as_hertz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_rate_round_trip() {
        let f = Frequency::from_gigahertz(20.0);
        let back = f.period().rate();
        assert!((back.as_gigahertz() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn picosecond_conversions() {
        let t = Seconds::from_picoseconds(125.0);
        assert!((t.as_nanoseconds() - 0.125).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_has_no_period() {
        let _ = Frequency::ZERO.period();
    }
}
