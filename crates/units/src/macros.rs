//! Internal boilerplate for `f64`-backed quantity newtypes.

/// Implements the shared surface of a scalar quantity newtype: constructors
/// from/to the SI base unit, ordering, arithmetic with `Self` and scaling by
/// `f64`, `Display` with the given unit suffix, and serde passthrough.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, base = $base:ident, from = $from:ident, as_ = $as_:ident, unit = $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            PartialOrd,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        pub struct $name(f64);

        impl $name {
            /// Zero quantity.
            pub const ZERO: $name = $name(0.0);

            #[doc = concat!("Creates the quantity from a value in ", $unit, ".")]
            ///
            /// # Panics
            ///
            /// Panics if the value is not finite.
            #[must_use]
            pub fn $from(value: f64) -> Self {
                assert!(
                    value.is_finite(),
                    concat!(stringify!($name), " must be finite, got {}"),
                    value
                );
                $name(value)
            }

            #[doc = concat!("Value in ", $unit, ".")]
            #[must_use]
            pub fn $as_(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// The larger of the two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// The smaller of the two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Clamps the quantity between `lo` and `hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// Dimensionless ratio of `self` to `other`.
            #[must_use]
            pub fn ratio_to(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl std::ops::Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl std::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!("{:.6e} ", $unit), self.0)
            }
        }
    };
}
