//! Physical constants and paper-wide calibration constants.

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Planck constant, J·s.
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Laser wall-plug efficiency assumed throughout the paper
/// (Blokhin et al., 1300 nm superlattice VCSEL, ref. \[47\]).
pub const WALL_PLUG_EFFICIENCY: f64 = 0.23;

/// Nominal O-band operating wavelength of the GF45SPCLO devices, nm.
pub const O_BAND_NM: f64 = 1310.0;

/// eoADC operating wavelength reported in §IV-C, nm.
pub const EOADC_WAVELENGTH_NM: f64 = 1310.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // sanity-checking the constants is the point
    fn constants_are_sane() {
        assert!(SPEED_OF_LIGHT > 2.9e8 && SPEED_OF_LIGHT < 3.0e8);
        assert!(WALL_PLUG_EFFICIENCY > 0.0 && WALL_PLUG_EFFICIENCY < 1.0);
        assert!(EOADC_WAVELENGTH_NM > O_BAND_NM);
    }
}
