//! The cross-coupled differential pSRAM bitcell co-simulation.

use crate::PsramConfig;
use pic_circuit::{DigitalDriver, EnergyMeter, RcNode, WaveformRecorder};
use pic_photonics::{Mrr, OperatingPoint, Photodiode};
use pic_signal::Waveform;
use pic_units::{Current, Energy, OpticalPower, Seconds, Voltage};

/// Outcome of a [`PsramBitcell::write`] operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteReport {
    /// `true` if the cell holds the requested bit after the write window.
    pub success: bool,
    /// Time from pulse start until the rising storage node crossed VDD/2,
    /// if it did.
    pub switch_time: Option<Seconds>,
    /// Energy consumed by the switching event (write laser at wall plug,
    /// bias laser, node and ring-drive CV²).
    pub energy: Energy,
}

/// Waveforms captured by [`PsramBitcell::record_write`] — the traces of
/// the paper's Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteTransient {
    /// Optical power on the WBL waveguide, W.
    pub wbl: Waveform,
    /// Optical power on the WBLB waveguide, W.
    pub wblb: Waveform,
    /// Storage node Q, volts.
    pub q: Waveform,
    /// Storage node QB, volts.
    pub qb: Waveform,
    /// The write outcome.
    pub report: WriteReport,
}

/// The differential cross-coupled photonic SRAM bitcell of Fig. 1.
///
/// Internal wiring (paper §II-A):
///
/// * the bias laser feeds splitter PS1, each half entering one ring's bus;
/// * M1 thru → P1 (QB pull-up), M1 drop → P2 (QB pull-down);
/// * M2 thru → P3 (Q pull-up),  M2 drop → P4 (Q pull-down);
/// * driver D2 buffers Q onto M1's junction, D1 buffers QB onto M2's;
/// * a WBL pulse illuminates P3 and P2 (driving Q→1, QB→0), a WBLB pulse
///   illuminates P4 and P1 (the opposite).
#[derive(Debug, Clone)]
pub struct PsramBitcell {
    config: PsramConfig,
    m1: Mrr,
    m2: Mrr,
    pd: Photodiode,
    q: RcNode,
    qb: RcNode,
    d1: DigitalDriver,
    d2: DigitalDriver,
    elapsed: Seconds,
    meter: EnergyMeter,
}

impl PsramBitcell {
    /// Creates a bitcell in the power-up state (stores `false`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`PsramConfig::validate`]).
    #[must_use]
    pub fn new(config: PsramConfig) -> Self {
        Self::with_stored(config, false)
    }

    /// Creates a bitcell preset to hold `bit`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn with_stored(config: PsramConfig, bit: bool) -> Self {
        config.validate();
        // Rings resonate at λ_IN when their junction is driven to VDD.
        let ring = || {
            Mrr::compute_ring_design()
                .resonant_at(config.wavelength, config.vdd)
                .build()
        };
        let (vq, vqb) = if bit {
            (config.vdd, Voltage::ZERO)
        } else {
            (Voltage::ZERO, config.vdd)
        };
        PsramBitcell {
            m1: ring(),
            m2: ring(),
            pd: Photodiode::gf45spclo(),
            q: RcNode::with_initial(config.node_capacitance, config.vdd, vq),
            qb: RcNode::with_initial(config.node_capacitance, config.vdd, vqb),
            // D2 buffers Q onto M1; D1 buffers QB onto M2.
            d2: DigitalDriver::with_initial(config.vdd, config.driver_slew_v_per_s, vq),
            d1: DigitalDriver::with_initial(config.vdd, config.driver_slew_v_per_s, vqb),
            elapsed: Seconds::ZERO,
            meter: EnergyMeter::new(),
            config,
        }
    }

    /// The configuration this cell was built with.
    #[must_use]
    pub fn config(&self) -> &PsramConfig {
        &self.config
    }

    /// Present voltage of storage node Q.
    #[must_use]
    pub fn q_voltage(&self) -> Voltage {
        self.q.voltage()
    }

    /// Present voltage of storage node QB.
    #[must_use]
    pub fn qb_voltage(&self) -> Voltage {
        self.qb.voltage()
    }

    /// Digital interpretation of the stored state: `Some(bit)` when Q and
    /// QB are complementary valid logic levels, `None` while the latch is
    /// in transition/metastable.
    #[must_use]
    pub fn stored_bit(&self) -> Option<bool> {
        let vdd = self.config.vdd.as_volts();
        let q = pic_signal::analysis::logic_level(self.q.voltage().as_volts(), 0.0, vdd)?;
        let qb = pic_signal::analysis::logic_level(self.qb.voltage().as_volts(), 0.0, vdd)?;
        (q != qb).then_some(q)
    }

    /// The voltage D2 is presently driving onto M1's junction — the 1-bit
    /// weight output that controls a multiplier ring in the compute core.
    #[must_use]
    pub fn weight_drive(&self) -> Voltage {
        self.d2.output()
    }

    /// Forces both storage nodes to explicit voltages and snaps the
    /// cross-coupling drivers to the corresponding rails — the state a
    /// cell is in at the end of an unpowered interval, used by the
    /// retention analysis in [`crate::margins`].
    pub fn set_node_voltages(&mut self, vq: Voltage, vqb: Voltage) {
        self.q.set_voltage(vq);
        self.qb.set_voltage(vqb);
        let rail = |v: Voltage| {
            if v.as_volts() > 0.5 * self.config.vdd.as_volts() {
                self.config.vdd
            } else {
                Voltage::ZERO
            }
        };
        self.d2 =
            DigitalDriver::with_initial(self.config.vdd, self.config.driver_slew_v_per_s, rail(vq));
        self.d1 = DigitalDriver::with_initial(
            self.config.vdd,
            self.config.driver_slew_v_per_s,
            rail(vqb),
        );
    }

    /// Simulation time elapsed in this cell.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Energy accounted so far, by component.
    #[must_use]
    pub fn energy_meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Advances the co-simulation one step with the given optical write
    /// inputs (zero for hold).
    pub fn step(&mut self, wbl: OpticalPower, wblb: OpticalPower, dt: Seconds) {
        self.step_with_bias(self.config.bias_power, wbl, wblb, dt);
    }

    /// Like [`PsramBitcell::step`] but with an explicit instantaneous bias
    /// power — used by the margin analyses to model bias-laser droop or
    /// interruption (the latch is volatile: §II-A holds data only "as long
    /// as both the optical bias and electrical bias are maintained").
    pub fn step_with_bias(
        &mut self,
        bias: OpticalPower,
        wbl: OpticalPower,
        wblb: OpticalPower,
        dt: Seconds,
    ) {
        let half_bias = bias * 0.5;
        let lam = self.config.wavelength;

        // Quasi-static optics at the present ring drive voltages.
        let op1 = OperatingPoint::at_voltage(self.d2.output());
        let op2 = OperatingPoint::at_voltage(self.d1.output());
        let p1 = half_bias * self.m1.thru_transmission(lam, op1);
        let p2 = half_bias * self.m1.drop_transmission(lam, op1);
        let p3 = half_bias * self.m2.thru_transmission(lam, op2);
        let p4 = half_bias * self.m2.drop_transmission(lam, op2);

        // Write pulses split between the two photodiodes they illuminate.
        let p3 = p3 + wbl * 0.5;
        let p2 = p2 + wbl * 0.5;
        let p4 = p4 + wblb * 0.5;
        let p1 = p1 + wblb * 0.5;

        // Balanced-pair node currents: pull-up minus pull-down (dark
        // current cancels in the differential pair).
        let i_q = self.pd.photocurrent(p3) - self.pd.photocurrent(p4);
        let i_qb = self.pd.photocurrent(p1) - self.pd.photocurrent(p2);
        self.q.step(i_q, dt);
        self.qb.step(i_qb, dt);

        // Cross-coupling drivers follow the fresh node voltages.
        self.d2.step(self.q.voltage(), dt);
        self.d1.step(self.qb.voltage(), dt);

        // Energy bookkeeping: the bias laser runs continuously.
        if bias.as_watts() > 0.0 {
            self.meter
                .record_power("bias_laser", bias.wall_plug_power_default(), dt);
        }
        let write_total = wbl + wblb;
        if write_total.as_watts() > 0.0 {
            self.meter
                .record_power("write_laser", write_total.wall_plug_power_default(), dt);
        }
        self.elapsed += dt;
    }

    /// Applies a one-shot optical pulse of arbitrary power and width on
    /// one write line, then lets the latch settle for one update period.
    /// Returns the stored bit afterwards. Unlike [`PsramBitcell::write`],
    /// the pulse power is unconstrained — this is the probe behind the
    /// write-margin and disturb analyses in [`crate::margins`].
    pub fn apply_pulse(
        &mut self,
        line_is_wbl: bool,
        power: OpticalPower,
        width: Seconds,
    ) -> Option<bool> {
        let dt = self.config.time_step;
        let settle = self.config.update_rate.period();
        let total = width.as_seconds() + settle.as_seconds();
        let steps = (total / dt.as_seconds()).ceil() as usize;
        for i in 0..steps {
            let in_pulse = (i as f64 * dt.as_seconds()) < width.as_seconds();
            let (wbl, wblb) = match (line_is_wbl, in_pulse) {
                (true, true) => (power, OpticalPower::ZERO),
                (false, true) => (OpticalPower::ZERO, power),
                (_, false) => (OpticalPower::ZERO, OpticalPower::ZERO),
            };
            self.step(wbl, wblb, dt);
        }
        self.stored_bit()
    }

    /// Holds the cell (no write light) for `duration`, returning `true` if
    /// the stored bit is a valid, unchanged logic state throughout.
    pub fn run_hold(&mut self, duration: Seconds) -> bool {
        let initial = self.stored_bit();
        if initial.is_none() {
            return false;
        }
        let dt = self.config.time_step;
        let steps = (duration.as_seconds() / dt.as_seconds()).ceil() as usize;
        for _ in 0..steps {
            self.step(OpticalPower::ZERO, OpticalPower::ZERO, dt);
            if self.stored_bit() != initial {
                return false;
            }
        }
        true
    }

    /// Writes `bit` with the configured differential pulse and lets the
    /// latch settle for one further update period.
    pub fn write(&mut self, bit: bool) -> WriteReport {
        // Meter the flip into a fresh accumulator and merge it once at
        // the end: the reported energy is then the exact same f64 for
        // every flip of a given direction, independent of how much
        // accounting history the cell carries (float addition is not
        // associative), which is what lets [`WriteTransientCache`]
        // replay a flip bit-identically.
        let saved = std::mem::replace(&mut self.meter, EnergyMeter::new());
        let saved_elapsed = std::mem::replace(&mut self.elapsed, Seconds::ZERO);
        let report = self.drive_write(bit, None);
        // The differential write channel arms both line lasers for the
        // pulse window even though only one carries light; account for the
        // dark line's laser at the same wall-plug draw (worst case, and
        // what lands the paper's ≈0.5 pJ/switch).
        let dark_line = self
            .config
            .write_power
            .wall_plug_power_default()
            .energy_over(self.config.write_pulse_width);
        self.meter.record("write_laser", dark_line);
        // Node and ring-junction CV² for the two transitioning nodes.
        let cv2 = |c: pic_units::Capacitance| c.stored_energy(self.config.vdd) * 2.0;
        self.meter
            .record("node_switching", cv2(self.config.node_capacitance) * 2.0);
        self.meter.record(
            "ring_drive",
            cv2(pic_units::Capacitance::from_femtofarads(
                crate::energy::RING_JUNCTION_CAPACITANCE_FF,
            )) * 2.0,
        );
        let delta = std::mem::replace(&mut self.meter, saved);
        self.meter.merge(&delta);
        let delta_elapsed = std::mem::replace(&mut self.elapsed, saved_elapsed);
        self.elapsed += delta_elapsed;
        WriteReport {
            energy: delta.total(),
            ..report
        }
    }

    /// Like [`PsramBitcell::write`] but records the Fig. 5 waveforms.
    pub fn record_write(&mut self, bit: bool) -> WriteTransient {
        let dt = self.config.time_step;
        let mut rec = Recorders {
            wbl: WaveformRecorder::new(dt),
            wblb: WaveformRecorder::new(dt),
            q: WaveformRecorder::new(dt),
            qb: WaveformRecorder::new(dt),
        };
        let report = self.drive_write(bit, Some(&mut rec));
        WriteTransient {
            wbl: rec.wbl.finish(),
            wblb: rec.wblb.finish(),
            q: rec.q.finish(),
            qb: rec.qb.finish(),
            report,
        }
    }

    fn drive_write(&mut self, bit: bool, mut rec: Option<&mut Recorders>) -> WriteReport {
        let dt = self.config.time_step;
        let pulse = self.config.write_pulse_width;
        let settle = self.config.update_rate.period();
        let total = Seconds::from_seconds(pulse.as_seconds() + settle.as_seconds());
        let steps = (total.as_seconds() / dt.as_seconds()).ceil() as usize;

        let rising_node_low_before = if bit {
            self.q.voltage().as_volts() < 0.5 * self.config.vdd.as_volts()
        } else {
            self.qb.voltage().as_volts() < 0.5 * self.config.vdd.as_volts()
        };
        let mut switch_time = None;

        for i in 0..steps {
            let t = i as f64 * dt.as_seconds();
            let in_pulse = t < pulse.as_seconds();
            let (wbl, wblb) = match (bit, in_pulse) {
                (true, true) => (self.config.write_power, OpticalPower::ZERO),
                (false, true) => (OpticalPower::ZERO, self.config.write_power),
                (_, false) => (OpticalPower::ZERO, OpticalPower::ZERO),
            };
            self.step(wbl, wblb, dt);

            if let Some(r) = rec.as_deref_mut() {
                r.wbl.push(wbl.as_watts());
                r.wblb.push(wblb.as_watts());
                r.q.push(self.q.voltage().as_volts());
                r.qb.push(self.qb.voltage().as_volts());
            }

            if switch_time.is_none() && rising_node_low_before {
                let rising = if bit { &self.q } else { &self.qb };
                if rising.voltage().as_volts() > 0.5 * self.config.vdd.as_volts() {
                    switch_time = Some(Seconds::from_seconds(t + dt.as_seconds()));
                }
            }
        }

        WriteReport {
            success: self.stored_bit() == Some(bit),
            switch_time,
            energy: Energy::ZERO, // filled in by `write`
        }
    }

    /// Net restoring current presently acting on node Q (diagnostic).
    #[must_use]
    pub fn q_restoring_current(&self) -> Current {
        let half_bias = self.config.bias_power * 0.5;
        let lam = self.config.wavelength;
        let op2 = OperatingPoint::at_voltage(self.d1.output());
        let p3 = half_bias * self.m2.thru_transmission(lam, op2);
        let p4 = half_bias * self.m2.drop_transmission(lam, op2);
        self.pd.photocurrent(p3) - self.pd.photocurrent(p4)
    }
}

struct Recorders {
    wbl: WaveformRecorder,
    wblb: WaveformRecorder,
    q: WaveformRecorder,
    qb: WaveformRecorder,
}

/// One fully-simulated write flip, captured once and replayable in O(1).
#[derive(Debug, Clone)]
struct CachedFlip {
    /// Settled node/driver voltages at the end of the transient.
    q: Voltage,
    qb: Voltage,
    d1: Voltage,
    d2: Voltage,
    /// Component-wise energy of exactly one flip (write laser, bias
    /// laser over the window, node and ring-drive CV²).
    meter: EnergyMeter,
    /// Simulation time the transient advanced the cell by.
    elapsed: Seconds,
    report: WriteReport,
}

/// Replayable write transients for one [`PsramConfig`].
///
/// A settled bitcell's write dynamics are fully determined by the config:
/// the ODE starts from exact rail voltages (both [`RcNode`] and
/// [`DigitalDriver`] clamp at the rails, and the regenerative bias light
/// drives the latch back onto them before the settle window closes), and
/// the energy recorded during the transient depends only on the step
/// count and configured powers — never on node state. So the full
/// co-simulation of a 0→1 and a 1→0 flip can be run **once** per config
/// and replayed onto any settled cell with bit-identical end state,
/// energy accounting, and [`WriteReport`].
///
/// [`WriteTransientCache::build`] verifies the closure property it relies
/// on — the settled post-write state must equal the preset state exactly
/// — and panics otherwise, so a config whose dynamics do not rail within
/// the write window can never be silently approximated.
///
/// This is what makes repeated tile streaming cheap: the serving path
/// ([`crate::PsramArray::store_matrix`]) replays cached flips instead of
/// re-integrating ~10³ ODE steps per cell, while the physics analyses
/// ([`PsramBitcell::write`], [`PsramBitcell::record_write`],
/// [`PsramBitcell::apply_pulse`]) keep the full simulation.
#[derive(Debug, Clone)]
pub struct WriteTransientCache {
    config: PsramConfig,
    to_true: CachedFlip,
    to_false: CachedFlip,
}

impl WriteTransientCache {
    /// Runs both flip transients through the full co-simulation and
    /// captures their end states and energy.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid, a transient fails to latch, or
    /// the settled post-write state differs from the preset state (the
    /// closure property replay correctness rests on).
    #[must_use]
    pub fn build(config: PsramConfig) -> Self {
        let flip = |bit: bool| {
            // A fresh probe's meter starts empty, so after one write it
            // holds exactly the per-flip component breakdown.
            let mut probe = PsramBitcell::with_stored(config, !bit);
            let report = probe.write(bit);
            assert!(
                report.success,
                "pSRAM write transient failed to latch while building the flip cache"
            );
            let preset = PsramBitcell::with_stored(config, bit);
            let closed = probe.q.voltage() == preset.q.voltage()
                && probe.qb.voltage() == preset.qb.voltage()
                && probe.d1.output() == preset.d1.output()
                && probe.d2.output() == preset.d2.output();
            assert!(
                closed,
                "write transient did not settle back onto the rails; \
                 cached replay would diverge from the full simulation"
            );
            CachedFlip {
                q: probe.q.voltage(),
                qb: probe.qb.voltage(),
                d1: probe.d1.output(),
                d2: probe.d2.output(),
                meter: probe.meter,
                elapsed: probe.elapsed,
                report,
            }
        };
        WriteTransientCache {
            config,
            to_true: flip(true),
            to_false: flip(false),
        }
    }

    /// A process-wide shared cache for `config`, built on first use.
    /// Arrays with equal configs (every device in a pool) share one.
    #[must_use]
    pub fn shared(config: PsramConfig) -> std::sync::Arc<Self> {
        static CACHES: std::sync::Mutex<Vec<(PsramConfig, std::sync::Arc<WriteTransientCache>)>> =
            std::sync::Mutex::new(Vec::new());
        let mut caches = CACHES.lock().expect("flip-cache registry poisoned");
        if let Some((_, cached)) = caches.iter().find(|(key, _)| *key == config) {
            return std::sync::Arc::clone(cached);
        }
        let built = std::sync::Arc::new(WriteTransientCache::build(config));
        caches.push((config, std::sync::Arc::clone(&built)));
        built
    }

    /// The config this cache was built for.
    #[must_use]
    pub fn config(&self) -> &PsramConfig {
        &self.config
    }

    fn flip(&self, bit: bool) -> &CachedFlip {
        if bit {
            &self.to_true
        } else {
            &self.to_false
        }
    }
}

impl PsramBitcell {
    /// Writes `bit` by replaying the cached transient: bit-identical end
    /// state, energy accounting, and report to [`PsramBitcell::write`],
    /// without re-integrating the ODE.
    ///
    /// # Panics
    ///
    /// Panics if the cache was built for a different config, or the cell
    /// is not settled on the opposite bit (replay is only defined for the
    /// flip the transient was captured from).
    pub fn write_cached(&mut self, bit: bool, cache: &WriteTransientCache) -> WriteReport {
        assert!(
            self.config == cache.config,
            "flip cache was built for a different PsramConfig"
        );
        assert_eq!(
            self.stored_bit(),
            Some(!bit),
            "cached write replay requires a cell settled on the opposite bit"
        );
        let flip = cache.flip(bit);
        self.q.set_voltage(flip.q);
        self.qb.set_voltage(flip.qb);
        self.d1 =
            DigitalDriver::with_initial(self.config.vdd, self.config.driver_slew_v_per_s, flip.d1);
        self.d2 =
            DigitalDriver::with_initial(self.config.vdd, self.config.driver_slew_v_per_s, flip.d2);
        self.meter.merge(&flip.meter);
        self.elapsed += flip.elapsed;
        flip.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> PsramBitcell {
        PsramBitcell::new(PsramConfig::paper())
    }

    #[test]
    fn power_up_state_is_zero_and_stable() {
        let mut c = cell();
        assert_eq!(c.stored_bit(), Some(false));
        assert!(c.run_hold(Seconds::from_nanoseconds(1.0)));
    }

    #[test]
    fn writes_flip_both_ways() {
        let mut c = cell();
        let up = c.write(true);
        assert!(up.success, "0→1 write failed");
        let down = c.write(false);
        assert!(down.success, "1→0 write failed");
    }

    #[test]
    fn written_state_holds_without_write_light() {
        let mut c = cell();
        c.write(true);
        assert!(c.run_hold(Seconds::from_nanoseconds(2.0)));
        assert_eq!(c.stored_bit(), Some(true));
    }

    #[test]
    fn switch_completes_within_update_period() {
        // 20 GHz updates require flipping inside 50 ps.
        let mut c = cell();
        let report = c.write(true);
        let t = report.switch_time.expect("node crossed mid-rail");
        assert!(
            t.as_picoseconds() <= 50.0,
            "switch took {} ps, exceeding the 20 GHz window",
            t.as_picoseconds()
        );
    }

    #[test]
    fn switching_energy_near_paper_half_picojoule() {
        let mut c = cell();
        let report = c.write(true);
        let pj = report.energy.as_picojoules();
        assert!(
            pj > 0.3 && pj < 0.7,
            "switching energy {pj} pJ out of the paper's 0.5 pJ class"
        );
    }

    #[test]
    fn rewriting_same_value_is_safe() {
        let mut c = cell();
        c.write(true);
        let again = c.write(true);
        assert!(again.success);
        assert_eq!(c.stored_bit(), Some(true));
    }

    #[test]
    fn nodes_are_complementary_after_write() {
        let mut c = cell();
        c.write(true);
        let vdd = c.config().vdd.as_volts();
        assert!(c.q_voltage().as_volts() > 0.7 * vdd);
        assert!(c.qb_voltage().as_volts() < 0.3 * vdd);
    }

    #[test]
    fn weight_drive_follows_stored_bit() {
        let mut c = cell();
        c.write(true);
        assert!(c.weight_drive().as_volts() > 0.9 * c.config().vdd.as_volts());
        c.write(false);
        assert!(c.weight_drive().as_volts() < 0.1 * c.config().vdd.as_volts());
    }

    #[test]
    fn restoring_current_signs_match_state() {
        let mut c = cell();
        c.write(true);
        assert!(c.q_restoring_current().as_amps() > 0.0, "holds Q high");
        c.write(false);
        assert!(c.q_restoring_current().as_amps() < 0.0, "holds Q low");
    }

    #[test]
    fn record_write_produces_fig5_shapes() {
        let mut c = cell();
        let tr = c.record_write(true);
        assert!(tr.report.success);
        // The pulse is on WBL only.
        assert!(tr.wbl.max_value() > 0.9e-3);
        assert_eq!(tr.wblb.max_value(), 0.0);
        // Q rises rail-to-rail, QB falls.
        assert!(tr.q.final_value() > 0.9);
        assert!(tr.qb.final_value() < 0.1);
        // All four waveforms share the time base.
        assert_eq!(tr.q.len(), tr.wbl.len());
    }
}
