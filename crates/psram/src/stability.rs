//! Static stability analysis of the pSRAM latch.
//!
//! The cross-coupled electro-optic loop can be analysed like an SRAM
//! butterfly plot: each half of the latch is a voltage transfer curve (VTC)
//! from one storage node, through a driver, a ring and a photodiode pair,
//! onto the other node. For a continuous curve we load each node with a
//! small linear conductance (models PD shunt/leakage), so the node settles
//! where photocurrent balances leakage instead of slamming to a rail.
//!
//! The static noise margin (SNM) is found with the usual maximum-square
//! method between the two mirrored VTCs.

use crate::PsramConfig;
use pic_photonics::{Mrr, OperatingPoint, Photodiode};
use pic_units::Voltage;

/// Node load conductance used to continuise the VTC, siemens.
///
/// The −20 dBm bias yields ≈4.4 µA of full-scale differential
/// photocurrent; 5 µS turns that into just under a rail-to-rail swing.
const NODE_LOAD_SIEMENS: f64 = 5.0e-6;

/// One half-latch VTC: voltage that the *output* node settles to when the
/// *input* node is held at `v_in`.
///
/// The input node drives a ring (through its slew-limited driver, taken at
/// DC ⇒ rail decision at VDD/2 with a linear transition band of ±10 % VDD
/// around it to keep the curve continuous); the ring steers bias light
/// between the output node's pull-up and pull-down photodiodes.
#[must_use]
pub fn half_latch_vtc(config: &PsramConfig, v_in: Voltage) -> Voltage {
    config.validate();
    let ring = Mrr::compute_ring_design()
        .resonant_at(config.wavelength, config.vdd)
        .build();
    let pd = Photodiode::gf45spclo();
    let vdd = config.vdd.as_volts();

    // DC driver: rail decision with a narrow linear band (driver gain ≈ 5).
    let x = (v_in.as_volts() - 0.5 * vdd) / (0.2 * vdd) + 0.5;
    let v_ring = Voltage::from_volts((x * vdd).clamp(0.0, vdd));

    let half_bias = config.bias_power * 0.5;
    let op = OperatingPoint::at_voltage(v_ring);
    // Output node: thru → pull-up PD, drop → pull-down PD (the M2→Q path).
    let up = pd.photocurrent(half_bias * ring.thru_transmission(config.wavelength, op));
    let down = pd.photocurrent(half_bias * ring.drop_transmission(config.wavelength, op));
    let v = 0.5 * vdd + (up - down).as_amps() / NODE_LOAD_SIEMENS;
    Voltage::from_volts(v.clamp(0.0, vdd))
}

/// Samples both butterfly lobes: returns `(v, F(v), F⁻¹ lobe)` triples
/// where `F` is the half-latch VTC. With two identical halves, the second
/// lobe is the mirror of the first.
#[must_use]
pub fn butterfly(config: &PsramConfig, points: usize) -> Vec<(f64, f64, f64)> {
    assert!(points >= 2, "need at least two points");
    let vdd = config.vdd.as_volts();
    (0..points)
        .map(|i| {
            let v = vdd * i as f64 / (points - 1) as f64;
            let fwd = half_latch_vtc(config, Voltage::from_volts(v)).as_volts();
            // The mirrored lobe swaps the axes of the same curve.
            (v, fwd, v)
        })
        .collect()
}

/// Static noise margin by the maximum-square method: the side of the
/// largest axis-aligned square inscribed in a butterfly eye.
///
/// The eye is bounded by curve A (`y = F(x)`) and its mirror, curve B
/// (`y = F⁻¹(x)`). A maximal square has its bottom-left corner on B and its
/// top-right corner on A: for each `x₁`, take `y₁ = F⁻¹(x₁)` and grow `s`
/// until `y₁ + s` meets the (decreasing) `F(x₁ + s)`.
#[must_use]
pub fn static_noise_margin(config: &PsramConfig) -> Voltage {
    let n = 801usize;
    let vdd = config.vdd.as_volts();
    let grid: Vec<f64> = (0..n).map(|i| vdd * i as f64 / (n - 1) as f64).collect();
    let f: Vec<f64> = grid
        .iter()
        .map(|&v| half_latch_vtc(config, Voltage::from_volts(v)).as_volts())
        .collect();

    let interp_f = |x: f64| -> f64 {
        let pos = (x / vdd * (n - 1) as f64).clamp(0.0, (n - 1) as f64);
        let i = pos.floor() as usize;
        if i + 1 >= n {
            return f[n - 1];
        }
        let frac = pos - i as f64;
        f[i] * (1.0 - frac) + f[i + 1] * frac
    };
    // F is monotone decreasing; invert by scanning for the crossing.
    let f_inverse = |y: f64| -> Option<f64> {
        for i in 0..n - 1 {
            if (f[i] - y) * (f[i + 1] - y) <= 0.0 {
                let denom = f[i + 1] - f[i];
                if denom.abs() < 1e-15 {
                    return Some(grid[i]);
                }
                return Some(grid[i] + (y - f[i]) * (grid[i + 1] - grid[i]) / denom);
            }
        }
        None
    };

    let ds = vdd / n as f64;
    let mut best = 0.0f64;
    for &x1 in &grid {
        let Some(y1) = f_inverse(x1) else { continue };
        let mut s = 0.0;
        while x1 + s <= vdd && interp_f(x1 + s) > y1 + s {
            s += ds;
        }
        if s > ds {
            best = best.max(s - ds);
        }
    }
    Voltage::from_volts(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PsramConfig {
        PsramConfig::paper()
    }

    #[test]
    fn vtc_is_inverting() {
        // Input high → ring resonant → thru dark → output pulled low.
        let lo = half_latch_vtc(&cfg(), Voltage::from_volts(1.0));
        let hi = half_latch_vtc(&cfg(), Voltage::from_volts(0.0));
        assert!(lo.as_volts() < 0.2, "high input gives low output, got {lo}");
        assert!(hi.as_volts() > 0.8, "low input gives high output, got {hi}");
    }

    #[test]
    fn vtc_endpoints_are_rails() {
        let c = cfg();
        let vdd = c.vdd.as_volts();
        let out0 = half_latch_vtc(&c, Voltage::ZERO).as_volts();
        let out1 = half_latch_vtc(&c, c.vdd).as_volts();
        assert!(out0 > 0.9 * vdd && out1 < 0.1 * vdd);
    }

    #[test]
    fn butterfly_has_three_crossings_structure() {
        // Inverting curve crossing the diagonal exactly once (the
        // metastable point) — together with its mirror that yields the
        // classic two stable + one metastable structure.
        let pts = butterfly(&cfg(), 101);
        let crossings = pts
            .windows(2)
            .filter(|w| (w[0].1 - w[0].0) * (w[1].1 - w[1].0) <= 0.0)
            .count();
        assert_eq!(crossings, 1, "expected a single diagonal crossing");
    }

    #[test]
    fn snm_is_a_healthy_fraction_of_vdd() {
        let snm = static_noise_margin(&cfg());
        let frac = snm.as_volts() / cfg().vdd.as_volts();
        assert!(
            frac > 0.15 && frac < 0.6,
            "SNM {frac} of VDD outside the plausible latch range"
        );
    }

    #[test]
    fn weaker_bias_light_reduces_snm() {
        let strong = static_noise_margin(&cfg());
        let mut weak_cfg = cfg();
        weak_cfg.bias_power = pic_units::OpticalPower::from_dbm(-32.0);
        let weak = static_noise_margin(&weak_cfg);
        assert!(
            weak.as_volts() < strong.as_volts(),
            "less light must mean less restoring margin ({weak} vs {strong})"
        );
    }
}
