//! Multi-bit words and 2D arrays of pSRAM bitcells.

use crate::{HoldPowerModel, PsramBitcell, PsramConfig, WriteEnergyModel, WriteTransientCache};
use pic_units::{ElectricalPower, Energy, Voltage};

/// An n-bit weight word backed by n pSRAM bitcells, MSB first — the
/// per-weight storage column of §II-B.
#[derive(Debug, Clone)]
pub struct PsramWord {
    cells: Vec<PsramBitcell>,
}

impl PsramWord {
    /// Creates a word of `bits` cells, all holding zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or above 16, or the config is invalid.
    #[must_use]
    pub fn new(config: PsramConfig, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "word width must be 1..=16 bits");
        PsramWord {
            cells: (0..bits).map(|_| PsramBitcell::new(config)).collect(),
        }
    }

    /// Creates a word preset to `value` (cells constructed already
    /// latched, no write transient) — the fast path for loading large
    /// weight matrices whose write dynamics are not under study.
    ///
    /// # Panics
    ///
    /// Panics like [`PsramWord::new`], or if `value` does not fit.
    #[must_use]
    pub fn preset(config: PsramConfig, bits: u32, value: u32) -> Self {
        assert!((1..=16).contains(&bits), "word width must be 1..=16 bits");
        assert!(
            value < (1u32 << bits),
            "value {value} does not fit in {bits} bits"
        );
        let cells = (0..bits)
            .map(|i| {
                let bit = (value >> (bits - 1 - i)) & 1 == 1;
                PsramBitcell::with_stored(config, bit)
            })
            .collect();
        PsramWord { cells }
    }

    /// Word width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.cells.len() as u32
    }

    /// Stored value, or `None` if any cell is mid-transition.
    #[must_use]
    pub fn value(&self) -> Option<u32> {
        let mut v = 0u32;
        for cell in &self.cells {
            v = (v << 1) | u32::from(cell.stored_bit()?);
        }
        Some(v)
    }

    /// Writes `value` by running the full optical write transient on every
    /// cell whose bit differs. Returns the switching energy spent and the
    /// number of cells flipped.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the word, or any write transient
    /// fails to latch (which would indicate a broken operating point).
    pub fn store(&mut self, value: u32) -> (Energy, usize) {
        assert!(
            value < (1u32 << self.bits()),
            "value {value} does not fit in {} bits",
            self.bits()
        );
        let mut energy = Energy::ZERO;
        let mut flips = 0;
        let width = self.bits();
        for (i, cell) in self.cells.iter_mut().enumerate() {
            let bit = (value >> (width - 1 - i as u32)) & 1 == 1;
            if cell.stored_bit() == Some(bit) {
                continue;
            }
            let report = cell.write(bit);
            assert!(report.success, "pSRAM write transient failed to latch");
            energy += report.energy;
            flips += 1;
        }
        (energy, flips)
    }

    /// Like [`PsramWord::store`] but replays cached flip transients
    /// ([`PsramBitcell::write_cached`]) instead of re-integrating the
    /// write ODE per cell — bit-identical state and energy, ~10³× faster.
    ///
    /// # Panics
    ///
    /// Panics like [`PsramWord::store`], or if the cache belongs to a
    /// different config.
    pub fn store_cached(&mut self, value: u32, cache: &WriteTransientCache) -> (Energy, usize) {
        assert!(
            value < (1u32 << self.bits()),
            "value {value} does not fit in {} bits",
            self.bits()
        );
        let mut energy = Energy::ZERO;
        let mut flips = 0;
        let width = self.bits();
        for (i, cell) in self.cells.iter_mut().enumerate() {
            let bit = (value >> (width - 1 - i as u32)) & 1 == 1;
            if cell.stored_bit() == Some(bit) {
                continue;
            }
            let report = cell.write_cached(bit, cache);
            assert!(report.success, "pSRAM write transient failed to latch");
            energy += report.energy;
            flips += 1;
        }
        (energy, flips)
    }

    /// The ring-drive voltages of the cells, MSB first — what the
    /// multiplier rings of a compute column see.
    #[must_use]
    pub fn weight_drives(&self) -> Vec<Voltage> {
        self.cells.iter().map(PsramBitcell::weight_drive).collect()
    }

    /// Immutable access to the backing cells, MSB first.
    #[must_use]
    pub fn cells(&self) -> &[PsramBitcell] {
        &self.cells
    }
}

/// A 2D array of n-bit pSRAM words: `rows × cols` weights, as tiled in the
/// paper's 16×16 tensor core (768 bitcells at 3-bit precision, §IV-D).
#[derive(Debug, Clone)]
pub struct PsramArray {
    config: PsramConfig,
    bits: u32,
    rows: usize,
    cols: usize,
    words: Vec<PsramWord>,
    /// Bumped on every mutable access path; lets read-side caches (e.g.
    /// the tensor core's weight cache) detect staleness cheaply.
    generation: u64,
    /// Replayable write transients shared by every array with this
    /// config — what keeps bulk matrix streaming off the per-cell ODE.
    flip_cache: std::sync::Arc<WriteTransientCache>,
}

impl PsramArray {
    /// Creates an all-zero array.
    ///
    /// # Panics
    ///
    /// Panics if `rows`/`cols` are zero or word construction panics.
    #[must_use]
    pub fn new(config: PsramConfig, rows: usize, cols: usize, bits: u32) -> Self {
        assert!(rows > 0 && cols > 0, "array must be non-empty");
        let words = (0..rows * cols)
            .map(|_| PsramWord::new(config, bits))
            .collect();
        PsramArray {
            config,
            bits,
            rows,
            cols,
            words,
            generation: 0,
            flip_cache: WriteTransientCache::shared(config),
        }
    }

    /// The shared replayable write-transient cache for this array's
    /// config (see [`WriteTransientCache`]).
    #[must_use]
    pub fn flip_cache(&self) -> &WriteTransientCache {
        &self.flip_cache
    }

    /// Monotone write-generation counter: incremented whenever the array
    /// is reached through any mutable path ([`PsramArray::word_mut`],
    /// the `store_matrix` family, [`PsramArray::preset_matrix`]). Two
    /// equal readings guarantee the stored weights have not changed in
    /// between.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Array rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Weight precision in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total number of bitcells (`rows × cols × bits`).
    #[must_use]
    pub fn bitcell_count(&self) -> usize {
        self.rows * self.cols * self.bits as usize
    }

    /// The word at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn word(&self, row: usize, col: usize) -> &PsramWord {
        assert!(row < self.rows && col < self.cols, "index out of range");
        &self.words[row * self.cols + col]
    }

    /// Mutable word access.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn word_mut(&mut self, row: usize, col: usize) -> &mut PsramWord {
        assert!(row < self.rows && col < self.cols, "index out of range");
        // Handing out `&mut` counts as a (potential) write.
        self.generation += 1;
        &mut self.words[row * self.cols + col]
    }

    /// Writes an entire weight matrix with *row-parallel* timing: all
    /// cells of one array row share a write slot (their WBL/WBLB pulses
    /// fire together), rows sequence at the update rate. Returns the
    /// switching energy, flip count, and the wall-clock write time —
    /// `rows-with-changes × update period`.
    ///
    /// # Panics
    ///
    /// Panics like [`PsramArray::store_matrix`].
    pub fn store_matrix_row_parallel(
        &mut self,
        matrix: &[Vec<u32>],
    ) -> (Energy, usize, pic_units::Seconds) {
        assert_eq!(matrix.len(), self.rows, "row count mismatch");
        let cache = std::sync::Arc::clone(&self.flip_cache);
        let mut energy = Energy::ZERO;
        let mut flips = 0;
        let mut busy_rows = 0;
        for (r, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "column count mismatch in row {r}");
            let mut row_flipped = false;
            for (c, &v) in row.iter().enumerate() {
                let (e, f) = self.word_mut(r, c).store_cached(v, &cache);
                energy += e;
                flips += f;
                row_flipped |= f > 0;
            }
            busy_rows += usize::from(row_flipped);
        }
        let slot = self.config.update_rate.period().as_seconds();
        (
            energy,
            flips,
            pic_units::Seconds::from_seconds(busy_rows as f64 * slot),
        )
    }

    /// Writes an entire weight matrix (row-major), returning total
    /// switching energy and flip count.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` dimensions do not match the array, or any value
    /// does not fit the word width.
    pub fn store_matrix(&mut self, matrix: &[Vec<u32>]) -> (Energy, usize) {
        assert_eq!(matrix.len(), self.rows, "row count mismatch");
        let cache = std::sync::Arc::clone(&self.flip_cache);
        let mut energy = Energy::ZERO;
        let mut flips = 0;
        for (r, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "column count mismatch in row {r}");
            for (c, &v) in row.iter().enumerate() {
                let (e, f) = self.word_mut(r, c).store_cached(v, &cache);
                energy += e;
                flips += f;
            }
        }
        (energy, flips)
    }

    /// Presets the whole array from a row-major matrix without running
    /// write transients (see [`PsramWord::preset`]).
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch or any value does not fit.
    pub fn preset_matrix(&mut self, matrix: &[Vec<u32>]) {
        assert_eq!(matrix.len(), self.rows, "row count mismatch");
        self.generation += 1;
        for (r, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "column count mismatch in row {r}");
            for (c, &v) in row.iter().enumerate() {
                self.words[r * self.cols + c] = PsramWord::preset(self.config, self.bits, v);
            }
        }
    }

    /// Reads the whole array back as a row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics if any word is mid-transition.
    #[must_use]
    pub fn read_matrix(&self) -> Vec<Vec<u32>> {
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.word(r, c).value().expect("settled word"))
                    .collect()
            })
            .collect()
    }

    /// Static hold power of the whole array.
    #[must_use]
    pub fn hold_power(&self) -> ElectricalPower {
        HoldPowerModel::new(self.config).power_for(self.bitcell_count())
    }

    /// Analytic energy for updating every cell once at the configured
    /// update rate (big-data streaming workloads, contribution 2 of the
    /// paper).
    #[must_use]
    pub fn full_refresh_energy(&self) -> Energy {
        WriteEnergyModel::new(self.config).energy_per_switch() * self.bitcell_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PsramConfig {
        PsramConfig::paper()
    }

    #[test]
    fn word_round_trips_all_3bit_values() {
        let mut w = PsramWord::new(cfg(), 3);
        for v in 0..8 {
            w.store(v);
            assert_eq!(w.value(), Some(v), "value {v}");
        }
    }

    #[test]
    fn store_skips_unchanged_bits() {
        let mut w = PsramWord::new(cfg(), 3);
        w.store(0b101);
        let (_, flips) = w.store(0b100); // only the LSB flips
        assert_eq!(flips, 1);
        let (e, flips) = w.store(0b100); // nothing flips
        assert_eq!(flips, 0);
        assert_eq!(e, Energy::ZERO);
    }

    #[test]
    fn word_drives_match_bits() {
        let mut w = PsramWord::new(cfg(), 3);
        w.store(0b110);
        let drives = w.weight_drives();
        assert!(drives[0].as_volts() > 0.9);
        assert!(drives[1].as_volts() > 0.9);
        assert!(drives[2].as_volts() < 0.1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn word_rejects_overflow() {
        let mut w = PsramWord::new(cfg(), 3);
        w.store(8);
    }

    #[test]
    fn paper_array_has_768_bitcells() {
        let arr = PsramArray::new(cfg(), 16, 16, 3);
        assert_eq!(arr.bitcell_count(), 768);
    }

    #[test]
    fn matrix_round_trip() {
        let mut arr = PsramArray::new(cfg(), 2, 3, 3);
        let m = vec![vec![1, 7, 0], vec![5, 2, 6]];
        let (energy, flips) = arr.store_matrix(&m);
        assert_eq!(arr.read_matrix(), m);
        assert!(flips > 0);
        assert!(energy.as_picojoules() > 0.0);
    }

    #[test]
    fn row_parallel_write_times_busy_rows_only() {
        let mut arr = PsramArray::new(cfg(), 4, 2, 3);
        // Change rows 0 and 2 only.
        let m = vec![vec![5, 2], vec![0, 0], vec![7, 1], vec![0, 0]];
        let (energy, flips, time) = arr.store_matrix_row_parallel(&m);
        assert!(flips > 0 && energy.as_picojoules() > 0.0);
        // Two busy rows at the 50 ps update slot.
        assert!((time.as_picoseconds() - 100.0).abs() < 1e-9);
        assert_eq!(arr.read_matrix(), m);
    }

    #[test]
    fn row_parallel_write_of_unchanged_matrix_is_instant() {
        let mut arr = PsramArray::new(cfg(), 2, 2, 3);
        let m = vec![vec![0, 0], vec![0, 0]];
        let (_, flips, time) = arr.store_matrix_row_parallel(&m);
        assert_eq!(flips, 0);
        assert_eq!(time.as_seconds(), 0.0);
    }

    #[test]
    fn hold_power_matches_model() {
        let arr = PsramArray::new(cfg(), 4, 4, 3);
        let per_cell = HoldPowerModel::new(cfg()).power_per_cell().as_watts();
        assert!((arr.hold_power().as_watts() - 48.0 * per_cell).abs() < 1e-12);
    }

    #[test]
    fn generation_tracks_every_mutable_path() {
        let mut arr = PsramArray::new(cfg(), 2, 2, 3);
        let g0 = arr.generation();
        let _ = arr.word(0, 0);
        let _ = arr.read_matrix();
        assert_eq!(arr.generation(), g0, "reads must not bump the counter");
        let m = vec![vec![1, 2], vec![3, 4]];
        arr.preset_matrix(&m);
        let g1 = arr.generation();
        assert!(g1 > g0, "preset_matrix must bump");
        let _ = arr.store_matrix(&m);
        let g2 = arr.generation();
        assert!(g2 > g1, "store_matrix must bump");
        let _ = arr.store_matrix_row_parallel(&m);
        let g3 = arr.generation();
        assert!(g3 > g2, "store_matrix_row_parallel must bump");
        arr.word_mut(1, 1).store(6);
        assert!(arr.generation() > g3, "word_mut must bump");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn array_bounds_checked() {
        let arr = PsramArray::new(cfg(), 2, 2, 3);
        let _ = arr.word(2, 0);
    }

    /// The serving path replays cached flip transients; this pins it
    /// bit-identical to the full per-cell ODE — stored values, ring-drive
    /// voltages, per-component energy, and write reports all equal.
    #[test]
    fn cached_store_is_bit_identical_to_full_transient() {
        let cache = WriteTransientCache::shared(cfg());
        let mut full = PsramWord::new(cfg(), 3);
        let mut cached = PsramWord::new(cfg(), 3);
        for value in [0b101, 0b010, 0b111, 0b000, 0b110, 0b110, 0b001] {
            let (e_full, f_full) = full.store(value);
            let (e_cached, f_cached) = cached.store_cached(value, &cache);
            assert_eq!(f_full, f_cached, "flip count diverged at {value:#05b}");
            assert_eq!(
                e_full.as_picojoules(),
                e_cached.as_picojoules(),
                "energy diverged at {value:#05b}"
            );
            assert_eq!(full.value(), cached.value());
            for (a, b) in full.cells().iter().zip(cached.cells()) {
                assert_eq!(a.weight_drive(), b.weight_drive());
                assert_eq!(a.q_voltage(), b.q_voltage());
                assert_eq!(a.qb_voltage(), b.qb_voltage());
                assert_eq!(a.elapsed(), b.elapsed());
                for (component, energy) in a.energy_meter().iter() {
                    assert_eq!(
                        energy.as_picojoules(),
                        b.energy_meter().energy_of(component).as_picojoules(),
                        "component {component} diverged"
                    );
                }
            }
        }
    }

    /// Streaming many matrices through `store_matrix` (the cached path)
    /// must land exactly the per-word full-transient energy and state.
    #[test]
    fn store_matrix_replay_matches_per_word_full_writes() {
        let mut arr = PsramArray::new(cfg(), 3, 2, 3);
        let mut reference: Vec<PsramWord> = (0..6).map(|_| PsramWord::new(cfg(), 3)).collect();
        let matrices = [
            vec![vec![1, 7], vec![0, 5], vec![2, 6]],
            vec![vec![6, 0], vec![7, 7], vec![1, 3]],
            vec![vec![6, 0], vec![7, 7], vec![1, 3]], // unchanged — zero flips
            vec![vec![0, 1], vec![2, 3], vec![4, 5]],
        ];
        for m in &matrices {
            let (e_cached, f_cached) = arr.store_matrix(m);
            let mut e_full = Energy::ZERO;
            let mut f_full = 0;
            for (r, row) in m.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    let (e, f) = reference[r * 2 + c].store(v);
                    e_full += e;
                    f_full += f;
                }
            }
            assert_eq!(f_cached, f_full);
            assert_eq!(e_cached.as_picojoules(), e_full.as_picojoules());
            assert_eq!(arr.read_matrix(), *m);
            for (r, row) in m.iter().enumerate() {
                for c in 0..row.len() {
                    assert_eq!(
                        arr.word(r, c).weight_drives(),
                        reference[r * 2 + c].weight_drives()
                    );
                }
            }
        }
    }
}
