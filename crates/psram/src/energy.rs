//! Analytic energy/power models for the pSRAM (§IV-A).

use crate::PsramConfig;
use pic_units::{ElectricalPower, Energy};

/// pn-junction capacitance presented by each ring to its driver, fF.
pub const RING_JUNCTION_CAPACITANCE_FF: f64 = 12.0;

/// Closed-form model of the energy of one pSRAM switching event,
/// mirroring exactly what [`crate::PsramBitcell::write`] meters:
///
/// * both differential write-line lasers armed for the pulse width, at
///   wall plug;
/// * the bias laser (wall plug) over pulse + settle window;
/// * `CV²` on both storage nodes and both ring junctions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteEnergyModel {
    config: PsramConfig,
}

impl WriteEnergyModel {
    /// Creates the model for a configuration.
    #[must_use]
    pub fn new(config: PsramConfig) -> Self {
        config.validate();
        WriteEnergyModel { config }
    }

    /// Energy of the write lasers (both lines armed) per switching event.
    #[must_use]
    pub fn laser_energy(&self) -> Energy {
        let one_line = self
            .config
            .write_power
            .wall_plug_power_default()
            .energy_over(self.config.write_pulse_width);
        one_line * 2.0
    }

    /// Bias-laser energy over one write window (pulse + settle period).
    #[must_use]
    pub fn bias_energy(&self) -> Energy {
        let window = pic_units::Seconds::from_seconds(
            self.config.write_pulse_width.as_seconds()
                + self.config.update_rate.period().as_seconds(),
        );
        self.config
            .bias_power
            .wall_plug_power_default()
            .energy_over(window)
    }

    /// Electrical `CV²` on the storage nodes and ring junctions (two of
    /// each transition per flip).
    #[must_use]
    pub fn switching_cv2(&self) -> Energy {
        let node = self.config.node_capacitance.stored_energy(self.config.vdd) * 4.0;
        let ring = pic_units::Capacitance::from_femtofarads(RING_JUNCTION_CAPACITANCE_FF)
            .stored_energy(self.config.vdd)
            * 4.0;
        node + ring
    }

    /// Total per-switch energy — the paper's headline 0.5 pJ (§IV-A).
    #[must_use]
    pub fn energy_per_switch(&self) -> Energy {
        self.laser_energy() + self.bias_energy() + self.switching_cv2()
    }
}

/// Static power of a holding bitcell: the CW bias laser at wall plug plus
/// photocurrent drawn from the supply by the conducting pull-up photodiode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldPowerModel {
    config: PsramConfig,
}

impl HoldPowerModel {
    /// Creates the model for a configuration.
    #[must_use]
    pub fn new(config: PsramConfig) -> Self {
        config.validate();
        HoldPowerModel { config }
    }

    /// Hold power per bitcell.
    #[must_use]
    pub fn power_per_cell(&self) -> ElectricalPower {
        let laser = self.config.bias_power.wall_plug_power_default();
        // One pull-up PD conducts roughly half the bias power's worth of
        // photocurrent from VDD in steady state.
        let responsivity = pic_photonics::calib::PHOTODIODE_RESPONSIVITY_A_PER_W;
        let i = (self.config.bias_power * 0.5).photocurrent(responsivity);
        laser + self.config.vdd * i
    }

    /// Hold power of an array of `cells` bitcells.
    #[must_use]
    pub fn power_for(&self, cells: usize) -> ElectricalPower {
        self.power_per_cell() * cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_switch_energy_is_half_picojoule_class() {
        let e = WriteEnergyModel::new(PsramConfig::paper()).energy_per_switch();
        let pj = e.as_picojoules();
        assert!(pj > 0.35 && pj < 0.65, "analytic per-switch energy {pj} pJ");
    }

    #[test]
    fn laser_term_dominates() {
        let m = WriteEnergyModel::new(PsramConfig::paper());
        assert!(m.laser_energy().as_joules() > m.switching_cv2().as_joules());
        assert!(m.laser_energy().as_joules() > m.bias_energy().as_joules());
    }

    #[test]
    fn hold_power_is_tens_of_microwatts() {
        let p = HoldPowerModel::new(PsramConfig::paper()).power_per_cell();
        let uw = p.as_microwatts();
        // −20 dBm / 0.23 ≈ 43.5 µW dominates.
        assert!(uw > 40.0 && uw < 60.0, "hold power {uw} µW");
    }

    #[test]
    fn array_hold_power_scales_linearly() {
        let m = HoldPowerModel::new(PsramConfig::paper());
        let one = m.power_per_cell().as_watts();
        let many = m.power_for(768).as_watts();
        assert!((many - 768.0 * one).abs() < 1e-12);
    }
}
