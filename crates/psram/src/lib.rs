//! Differential cross-coupled photonic SRAM (pSRAM).
//!
//! Implements the bitcell of Fig. 1: two microrings (M1/M2) and four
//! photodiodes (P1–P4) arranged so that each storage node (Q, QB) sits
//! between a pull-up and a pull-down photodiode, and each node drives the
//! *other* ring's pn junction through an electrical driver — a positive
//! feedback loop held up by an optical bias and torn over by differential
//! optical write pulses on WBL/WBLB.
//!
//! Paper headline behaviour reproduced here:
//!
//! * hold stability while optical + electrical bias persist (§II-A);
//! * optical writes with 50 ps, 0 dBm pulses against a −20 dBm bias
//!   (§IV-A, Fig. 5);
//! * 20 GHz update rate at ≈0.5 pJ per switching event (§IV-A).
//!
//! # Example
//!
//! ```
//! use pic_psram::{PsramBitcell, PsramConfig};
//!
//! let mut cell = PsramBitcell::new(PsramConfig::paper());
//! let report = cell.write(true);
//! assert!(report.success);
//! assert_eq!(cell.stored_bit(), Some(true));
//! let report = cell.write(false);
//! assert!(report.success);
//! assert_eq!(cell.stored_bit(), Some(false));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod bitcell;
mod config;
mod energy;
pub mod margins;
pub mod stability;

pub use array::{PsramArray, PsramWord};
pub use bitcell::{PsramBitcell, WriteReport, WriteTransientCache};
pub use config::PsramConfig;
pub use energy::{HoldPowerModel, WriteEnergyModel};
