//! pSRAM bitcell configuration.

use pic_units::{Capacitance, Frequency, OpticalPower, Seconds, Voltage, Wavelength};

/// Electrical/optical operating parameters of a pSRAM bitcell.
///
/// [`PsramConfig::paper`] reproduces §IV-A: −20 dBm optical bias, 0 dBm /
/// 50 ps write pulses, 20 GHz update rate.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PsramConfig {
    /// Core supply voltage (the latch's logic swing).
    pub vdd: Voltage,
    /// Capacitance of each storage node (Q, QB).
    pub node_capacitance: Capacitance,
    /// CW optical bias power delivered to the input splitter PS1.
    pub bias_power: OpticalPower,
    /// Operating wavelength λ_IN (rings resonate here at VDD drive).
    pub wavelength: Wavelength,
    /// Peak optical power of a write pulse on WBL/WBLB.
    pub write_power: OpticalPower,
    /// Width of a write pulse.
    pub write_pulse_width: Seconds,
    /// Slew rate of the cross-coupling drivers D1/D2, V/s.
    pub driver_slew_v_per_s: f64,
    /// Co-simulation time step.
    pub time_step: Seconds,
    /// Memory update (write) rate.
    pub update_rate: Frequency,
}

impl PsramConfig {
    /// The paper's §IV-A operating point.
    #[must_use]
    pub fn paper() -> Self {
        PsramConfig {
            vdd: Voltage::from_volts(1.0),
            node_capacitance: Capacitance::from_femtofarads(2.0),
            bias_power: OpticalPower::from_dbm(-20.0),
            wavelength: Wavelength::from_nanometers(pic_units::constants::O_BAND_NM),
            write_power: OpticalPower::from_dbm(0.0),
            write_pulse_width: Seconds::from_picoseconds(50.0),
            driver_slew_v_per_s: 1.0e11, // full swing in 10 ps
            time_step: Seconds::from_picoseconds(0.25),
            update_rate: Frequency::from_gigahertz(20.0),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive, or if the write power does
    /// not exceed the bias power (the paper's write condition, §II-A).
    pub fn validate(&self) {
        assert!(self.vdd.as_volts() > 0.0, "VDD must be positive");
        assert!(
            self.node_capacitance.as_farads() > 0.0,
            "node capacitance must be positive"
        );
        assert!(
            self.bias_power.as_watts() > 0.0,
            "optical bias must be positive (the latch needs light to hold)"
        );
        assert!(
            self.write_power.as_watts() > self.bias_power.as_watts(),
            "write optical power must exceed the input bias power for a \
             successful data flip (paper §II-A)"
        );
        assert!(
            self.write_pulse_width.as_seconds() > 0.0,
            "write pulse width must be positive"
        );
        assert!(
            self.driver_slew_v_per_s > 0.0,
            "driver slew must be positive"
        );
        assert!(
            self.time_step.as_seconds() > 0.0,
            "time step must be positive"
        );
        assert!(
            self.update_rate.as_hertz() > 0.0,
            "update rate must be positive"
        );
        assert!(
            self.write_pulse_width.as_seconds() <= self.update_rate.period().as_seconds(),
            "write pulse must fit within one update period"
        );
    }
}

impl Default for PsramConfig {
    fn default() -> Self {
        PsramConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        PsramConfig::paper().validate();
    }

    #[test]
    fn paper_write_window_matches_update_rate() {
        let c = PsramConfig::paper();
        // 20 GHz → 50 ps period, exactly one write pulse wide.
        assert!((c.update_rate.period().as_picoseconds() - 50.0).abs() < 1e-9);
        assert!(c.write_pulse_width.as_seconds() <= c.update_rate.period().as_seconds());
    }

    #[test]
    #[should_panic(expected = "exceed the input bias")]
    fn rejects_weak_write_power() {
        let mut c = PsramConfig::paper();
        c.write_power = OpticalPower::from_dbm(-30.0);
        c.validate();
    }
}
