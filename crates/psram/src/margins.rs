//! Write-margin, disturb and retention analysis of the pSRAM bitcell.
//!
//! The paper states the write condition qualitatively ("the write optical
//! power must exceed the input bias laser power for successful data
//! flipping", §II-A) and the hold condition ("as long as both the optical
//! bias and electrical bias are maintained"). This module measures both:
//!
//! * the **minimum flip power** — the smallest one-sided optical pulse
//!   that overturns the latch (bisection over the full write transient);
//! * the **disturb margin** — how much stray light a *hold*-state line can
//!   tolerate (pulses below the flip threshold must never corrupt data);
//! * **retention after bias loss** — how long stored data survives a bias
//!   laser dropout before the dark-current droop erases it.

use crate::{PsramBitcell, PsramConfig};
use pic_units::{OpticalPower, Seconds};

/// Result of the write/disturb margin analysis.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MarginReport {
    /// Smallest pulse power that flips the cell, W.
    pub minimum_flip_power_w: f64,
    /// Largest pulse power a held cell settles back from, W. Between this
    /// and the flip threshold lies a metastable band where the outcome is
    /// indeterminate within one update period.
    pub maximum_safe_disturb_w: f64,
    /// Nominal write power over minimum flip power.
    pub write_margin: f64,
    /// Minimum flip power over bias power (the paper requires > 1).
    pub flip_over_bias: f64,
}

/// Finds the smallest one-sided pulse (at the configured width) that flips
/// a cell holding `false` to `true`, by bisection over the full transient.
///
/// # Panics
///
/// Panics if the nominal write power itself fails to flip the cell (a
/// broken operating point).
#[must_use]
pub fn minimum_flip_power(config: PsramConfig) -> OpticalPower {
    let flips = |power: OpticalPower| -> bool {
        let mut cell = PsramBitcell::with_stored(config, false);
        cell.apply_pulse(true, power, config.write_pulse_width) == Some(true)
    };
    assert!(
        flips(config.write_power),
        "nominal write power must flip the cell"
    );

    let (mut lo, mut hi) = (0.0f64, config.write_power.as_watts());
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if flips(OpticalPower::from_watts(mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    OpticalPower::from_watts(hi)
}

/// Largest disturb pulse a holding cell reliably settles back from, found
/// by bisection below the flip threshold.
#[must_use]
pub fn maximum_safe_disturb(config: PsramConfig) -> OpticalPower {
    let ceiling = minimum_flip_power(config).as_watts();
    let (mut lo, mut hi) = (0.0f64, ceiling);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if survives_disturb(config, OpticalPower::from_watts(mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    OpticalPower::from_watts(lo)
}

/// Full margin analysis at a configuration.
#[must_use]
pub fn margin_report(config: PsramConfig) -> MarginReport {
    let min_flip = minimum_flip_power(config);
    let safe = maximum_safe_disturb(config);
    MarginReport {
        minimum_flip_power_w: min_flip.as_watts(),
        maximum_safe_disturb_w: safe.as_watts(),
        write_margin: config.write_power.as_watts() / min_flip.as_watts(),
        flip_over_bias: min_flip.as_watts() / config.bias_power.as_watts(),
    }
}

/// `true` if a disturb pulse of `power` on the *opposing* line (WBLB while
/// the cell holds `true`) fails to corrupt the cell — it should, for any
/// power below the flip threshold.
#[must_use]
pub fn survives_disturb(config: PsramConfig, power: OpticalPower) -> bool {
    let mut cell = PsramBitcell::with_stored(config, true);
    // Pulse pushes toward `false`; survival means still `true` after.
    cell.apply_pulse(false, power, config.write_pulse_width) == Some(true)
}

/// How long stored data survives a total bias-laser dropout.
///
/// With the light off, the photodiodes only conduct their dark current;
/// the high node droops toward ground at `I_dark / C_node` until it can no
/// longer win the restore when light returns. Returns the longest dropout
/// (bisection) after which the cell still holds its data once the bias is
/// restored for ten update periods.
#[must_use]
pub fn bias_loss_retention(config: PsramConfig) -> Seconds {
    let survives = |dropout: Seconds| -> bool {
        // Dark interval: no optical input at all. The balanced dark
        // currents cancel in the ideal model; apply the physical droop
        // explicitly — the high node leaks its charge through the
        // reverse-biased pull-down junction at the dark-current rate.
        let dark = pic_units::Current::from_amps(pic_photonics::calib::PHOTODIODE_DARK_CURRENT_A);
        let droop = config.node_capacitance.voltage_delta(dark, dropout);
        let vq = (config.vdd - droop).max(pic_units::Voltage::ZERO);

        // Resume from the drooped state with the light restored and let
        // the feedback loop settle; survival = the original bit returns.
        let mut cell = PsramBitcell::with_stored(config, true);
        cell.set_node_voltages(vq, pic_units::Voltage::ZERO);
        let dt = config.time_step;
        let settle_steps =
            (10.0 * config.update_rate.period().as_seconds() / dt.as_seconds()) as usize;
        for _ in 0..settle_steps {
            cell.step(OpticalPower::ZERO, OpticalPower::ZERO, dt);
        }
        cell.stored_bit() == Some(true)
    };

    let (mut lo, mut hi) = (Seconds::ZERO, Seconds::from_nanoseconds(2000.0));
    if survives(hi) {
        return hi; // retention beyond the search window
    }
    for _ in 0..40 {
        let mid = Seconds::from_seconds(0.5 * (lo.as_seconds() + hi.as_seconds()));
        if survives(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// One point of the write-speed characterisation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WriteSpeedPoint {
    /// Pulse power, W.
    pub power_w: f64,
    /// Time for the rising node to cross VDD/2, seconds (`NaN` if the
    /// pulse failed to flip the cell).
    pub switch_time_s: f64,
    /// Whether the cell latched the new value.
    pub flipped: bool,
}

/// Sweeps the write-pulse power and records the switching time at each
/// point — the curve behind the 20 GHz update-rate claim: at the nominal
/// 0 dBm drive the flip completes in a small fraction of the 50 ps slot.
///
/// # Panics
///
/// Panics if `powers` is empty.
#[must_use]
pub fn write_speed_profile(config: PsramConfig, powers: &[OpticalPower]) -> Vec<WriteSpeedPoint> {
    assert!(!powers.is_empty(), "need at least one power point");
    powers
        .iter()
        .map(|&p| {
            let mut cell = PsramBitcell::with_stored(config, false);
            let before = cell.q_voltage();
            debug_assert!(before.as_volts() < 0.1);
            // Drive and watch the transient directly for the crossing.
            let dt = config.time_step;
            let total =
                config.write_pulse_width.as_seconds() + config.update_rate.period().as_seconds();
            let steps = (total / dt.as_seconds()).ceil() as usize;
            let mut switch_time = f64::NAN;
            for i in 0..steps {
                let t = i as f64 * dt.as_seconds();
                let pulse_on = t < config.write_pulse_width.as_seconds();
                cell.step(
                    if pulse_on { p } else { OpticalPower::ZERO },
                    OpticalPower::ZERO,
                    dt,
                );
                if switch_time.is_nan() && cell.q_voltage().as_volts() > 0.5 * config.vdd.as_volts()
                {
                    switch_time = t + dt.as_seconds();
                }
            }
            let flipped = cell.stored_bit() == Some(true);
            WriteSpeedPoint {
                power_w: p.as_watts(),
                switch_time_s: if flipped { switch_time } else { f64::NAN },
                flipped,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PsramConfig {
        PsramConfig::paper()
    }

    #[test]
    fn stronger_pulses_flip_faster() {
        let powers: Vec<OpticalPower> = [0.1, 0.3, 1.0]
            .iter()
            .map(|&mw| OpticalPower::from_milliwatts(mw))
            .collect();
        let profile = write_speed_profile(cfg(), &powers);
        assert!(profile.iter().all(|p| p.flipped));
        for w in profile.windows(2) {
            assert!(
                w[1].switch_time_s < w[0].switch_time_s,
                "more power must flip faster: {w:?}"
            );
        }
    }

    #[test]
    fn nominal_drive_flips_in_a_fraction_of_the_slot() {
        let profile = write_speed_profile(cfg(), &[cfg().write_power]);
        let t = profile[0].switch_time_s;
        assert!(profile[0].flipped);
        assert!(
            t < 0.2 * cfg().update_rate.period().as_seconds(),
            "nominal flip takes {t} s of the 50 ps slot"
        );
    }

    #[test]
    fn sub_threshold_points_report_no_flip() {
        let profile = write_speed_profile(cfg(), &[OpticalPower::from_microwatts(20.0)]);
        assert!(!profile[0].flipped);
        assert!(profile[0].switch_time_s.is_nan());
    }

    #[test]
    fn paper_write_condition_holds() {
        // §II-A: flipping requires more optical power than the bias.
        let report = margin_report(cfg());
        assert!(
            report.flip_over_bias > 1.0,
            "flip threshold {}× bias must exceed 1",
            report.flip_over_bias
        );
    }

    #[test]
    fn nominal_write_has_generous_margin() {
        // 0 dBm against a −20 dBm bias: the flip threshold sits far below
        // the nominal drive.
        let report = margin_report(cfg());
        assert!(
            report.write_margin > 5.0,
            "write margin {} too thin",
            report.write_margin
        );
    }

    #[test]
    fn sub_threshold_disturb_is_harmless() {
        let safe = maximum_safe_disturb(cfg());
        for frac in [0.1, 0.5, 0.95] {
            let p = OpticalPower::from_watts(safe.as_watts() * frac);
            assert!(
                survives_disturb(cfg(), p),
                "disturb at {frac}× the safe ceiling corrupted the cell"
            );
        }
    }

    #[test]
    fn metastable_band_is_narrow() {
        // Between "settles back" and "cleanly flips" lies an indeterminate
        // band; it should be a small fraction of the flip threshold.
        let report = margin_report(cfg());
        let band = report.minimum_flip_power_w - report.maximum_safe_disturb_w;
        assert!(band >= 0.0, "thresholds out of order");
        // Measured ≈28 % at the paper's operating point: the one-update-
        // period settle window (50 ps) only lets the µW-scale bias restore
        // a fraction of the swing, so near-threshold outcomes stay
        // indeterminate. A longer settle narrows the band.
        assert!(
            band / report.minimum_flip_power_w < 0.4,
            "metastable band spans {} of the flip threshold",
            band / report.minimum_flip_power_w
        );
    }

    #[test]
    fn above_threshold_pulse_flips() {
        let min_flip = minimum_flip_power(cfg());
        assert!(
            !survives_disturb(cfg(), OpticalPower::from_watts(min_flip.as_watts() * 1.5)),
            "a pulse 1.5× the flip threshold must overturn the latch"
        );
    }

    #[test]
    fn retention_is_finite_but_spans_many_cycles() {
        let t = bias_loss_retention(cfg());
        let cycles = t.as_seconds() / cfg().update_rate.period().as_seconds();
        assert!(
            cycles > 100.0,
            "retention should cover many update periods, got {cycles}"
        );
    }
}
