//! Windowed metrics time series: a fixed ring of per-tick [`Frame`]
//! deltas, powering `GET /metrics/history` and SLO burn-rate gauges.
//!
//! A ticker thread pushes one cumulative [`Frame`] per second;
//! [`SeriesStore::push`] subtracts the previous frame so each stored
//! point holds only that tick's activity. Windows are then just sums
//! of recent points: counters add, histograms merge bucket-wise, and
//! gauges keep the newest instantaneous value.
//!
//! *Burn rate* compares a window's behaviour against an SLO: a p99
//! burn of 1.0 means the window's p99 latency sits exactly at the
//! objective, 2.0 means it is twice the objective; an error burn of
//! 1.0 means the window consumed error budget exactly as fast as the
//! budget allows. Alerting on short-window burn > threshold is the
//! standard multi-window burn-rate pattern.
//!
//! Under `obs-off`, [`SeriesStore::push`] discards its frame and
//! every read-side call reports an empty series.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::expose::Frame;

/// One stored tick: the frame *delta* covering `(previous tick, at_s]`.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Timestamp of the tick, seconds since the producer's origin.
    pub at_s: f64,
    /// Activity within the tick (counters/histograms are per-tick
    /// deltas; gauges are instantaneous at the tick).
    pub delta: Frame,
}

#[derive(Debug, Default)]
struct SeriesInner {
    last: Option<Frame>,
    ring: VecDeque<SeriesPoint>,
}

/// SLO burn-rate gauges over one window (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnGauges {
    /// Window p99 latency divided by the p99 objective.
    pub p99_burn: f64,
    /// Window error rate divided by the error budget.
    pub error_burn: f64,
    /// Seconds the window actually covers.
    pub window_s: f64,
}

/// Bounded ring of per-tick frame deltas.
#[derive(Debug)]
pub struct SeriesStore {
    capacity: usize,
    inner: Mutex<SeriesInner>,
}

impl SeriesStore {
    /// A store keeping the last `capacity` ticks (rounded up to 1).
    #[must_use]
    pub fn new(capacity: usize) -> SeriesStore {
        SeriesStore {
            capacity: capacity.max(1),
            inner: Mutex::new(SeriesInner::default()),
        }
    }

    /// Ring capacity in ticks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ticks currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether no ticks are held yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ingests one cumulative frame: stores its delta against the
    /// previous push (the first push is stored as-is, covering
    /// "since start"). No-op under `obs-off`.
    pub fn push(&self, frame: Frame) {
        if !crate::enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let delta = match &inner.last {
            Some(last) => frame.delta(last),
            None => frame.clone(),
        };
        let at_s = frame.at_s;
        inner.last = Some(frame);
        inner.ring.push_back(SeriesPoint { at_s, delta });
        while inner.ring.len() > self.capacity {
            inner.ring.pop_front();
        }
    }

    /// The most recent `n` ticks, oldest first.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<SeriesPoint> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// One frame summing the most recent `n` ticks: counters add,
    /// stage energy adds, histograms merge bucket-wise, gauges keep
    /// the newest tick's values. `None` when the series is empty.
    #[must_use]
    pub fn window(&self, n: usize) -> Option<Frame> {
        let points = self.recent(n);
        let (first, rest) = points.split_first()?;
        let mut acc = first.delta.clone();
        for point in rest {
            accumulate(&mut acc, &point.delta);
        }
        acc.at_s = points.last().map_or(acc.at_s, |p| p.at_s);
        Some(acc)
    }

    /// Burn-rate gauges over the most recent `n` ticks. The window's
    /// p99 is read from the named histogram; its error rate from
    /// `err_counter / (ok_counter + err_counter)`. A window with no
    /// replies burns nothing. `None` when the series is empty, the
    /// objective is non-positive, or the budget is non-positive.
    #[must_use]
    pub fn burn(
        &self,
        n: usize,
        latency_hist: &str,
        ok_counter: &str,
        err_counter: &str,
        p99_target_s: f64,
        error_budget: f64,
    ) -> Option<BurnGauges> {
        if p99_target_s <= 0.0 || error_budget <= 0.0 {
            return None;
        }
        let points = self.recent(n);
        let window = self.window(n)?;
        let counter = |name: &str| -> u64 {
            window
                .counters
                .iter()
                .find(|(c, _)| *c == name)
                .map_or(0, |&(_, v)| v)
        };
        let p99 = window
            .hists
            .iter()
            .find(|(c, _)| *c == latency_hist)
            .map_or(0.0, |(_, h)| h.quantile_s(0.99));
        let ok = counter(ok_counter);
        let err = counter(err_counter);
        let total = ok + err;
        let error_rate = if total == 0 {
            0.0
        } else {
            err as f64 / total as f64
        };
        let window_s = match (points.first(), points.last()) {
            (Some(a), Some(b)) if b.at_s > a.at_s => b.at_s - a.at_s + 1.0,
            _ => points.len() as f64,
        };
        Some(BurnGauges {
            p99_burn: p99 / p99_target_s,
            error_burn: error_rate / error_budget,
            window_s,
        })
    }

    /// JSON document for `GET /metrics/history`: the most recent `n`
    /// ticks, oldest first, each a full frame object.
    #[must_use]
    pub fn history_json(&self, n: usize) -> String {
        let points = self.recent(n);
        let mut out = String::with_capacity(256 + points.len() * 512);
        out.push_str("{\"points\":[");
        for (i, point) in points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&point.delta.to_json());
        }
        out.push_str(&format!(
            "],\"len\":{},\"capacity\":{}}}",
            points.len(),
            self.capacity
        ));
        out
    }
}

/// Adds `d` into `acc`: counters/energy sum, histograms merge, gauges
/// take `d`'s (newer) values, names missing from `acc` are appended.
fn accumulate(acc: &mut Frame, d: &Frame) {
    for &(name, v) in &d.counters {
        match acc.counters.iter_mut().find(|(n, _)| *n == name) {
            Some(entry) => entry.1 += v,
            None => acc.counters.push((name, v)),
        }
    }
    for (name, v) in &d.gauges {
        match acc.gauges.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = *v,
            None => acc.gauges.push((name.clone(), *v)),
        }
    }
    for stage in &d.stages {
        match acc.stages.iter_mut().find(|s| s.stage == stage.stage) {
            Some(entry) => {
                entry.hist.merge(&stage.hist);
                entry.energy_j += stage.energy_j;
            }
            None => acc.stages.push(stage.clone()),
        }
    }
    for (name, hist) in &d.hists {
        match acc.hists.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1.merge(hist),
            None => acc.hists.push((*name, hist.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn compiled() -> bool {
        !cfg!(feature = "obs-off")
    }

    fn frame(at_s: f64, ok: u64, err: u64, latency_ns: &[u64]) -> Frame {
        let h = LatencyHistogram::new();
        for &ns in latency_ns {
            h.record(ns);
        }
        Frame {
            at_s,
            counters: vec![("replies_ok", ok), ("replies_error", err)],
            gauges: vec![("inflight".to_owned(), ok as f64)],
            stages: Vec::new(),
            hists: vec![("latency", h.snapshot())],
        }
    }

    #[test]
    fn push_stores_per_tick_deltas() {
        let store = SeriesStore::new(8);
        store.push(frame(1.0, 10, 0, &[1_000]));
        store.push(frame(2.0, 25, 1, &[1_000, 2_000]));
        if !compiled() {
            assert!(store.is_empty());
            assert!(store.window(8).is_none());
            return;
        }
        assert_eq!(store.len(), 2);
        let points = store.recent(8);
        assert_eq!(points[0].delta.counters[0], ("replies_ok", 10));
        assert_eq!(points[1].delta.counters[0], ("replies_ok", 15));
        assert_eq!(points[1].delta.counters[1], ("replies_error", 1));
        assert_eq!(points[1].delta.hists[0].1.count(), 1);
    }

    #[test]
    fn ring_caps_and_window_sums() {
        if !compiled() {
            return;
        }
        let store = SeriesStore::new(3);
        for t in 1..=5u64 {
            // Cumulative inputs: tick t has seen t samples in total.
            let samples = vec![1_000u64; t as usize];
            store.push(frame(t as f64, t * 10, t, &samples));
        }
        assert_eq!(store.len(), 3);
        // Window over the last 2 ticks: deltas are (+10 ok, +1 err) each.
        let w = store.window(2).expect("non-empty window");
        assert_eq!(w.counters[0], ("replies_ok", 20));
        assert_eq!(w.counters[1], ("replies_error", 2));
        assert_eq!(w.at_s, 5.0);
        // Gauges keep the newest tick's value.
        assert_eq!(w.gauges[0].1, 50.0);
        // Histograms merge: one fresh sample per tick after the first.
        assert_eq!(w.hists[0].1.count(), 2);
    }

    #[test]
    fn burn_rates_scale_with_the_slo() {
        if !compiled() {
            return;
        }
        let store = SeriesStore::new(8);
        store.push(frame(1.0, 0, 0, &[]));
        // Tick 2: 90 ok + 10 err, latencies ~1 ms.
        let samples: Vec<u64> = (0..100).map(|_| 1_000_000).collect();
        store.push(frame(2.0, 90, 10, &samples));
        let burn = store
            .burn(8, "latency", "replies_ok", "replies_error", 2e-3, 0.05)
            .expect("non-empty series");
        // p99 ≈ 1-2 ms against a 2 ms objective: burn in (0, ~1].
        assert!(burn.p99_burn > 0.25 && burn.p99_burn <= 1.01, "{burn:?}");
        // 10% errors against a 5% budget: burn = 2.
        assert!((burn.error_burn - 2.0).abs() < 1e-9, "{burn:?}");
        assert!((burn.window_s - 2.0).abs() < 1e-9, "{burn:?}");
        // Degenerate SLOs refuse rather than divide by zero.
        assert!(store
            .burn(8, "latency", "replies_ok", "replies_error", 0.0, 0.05)
            .is_none());
        assert!(store
            .burn(8, "latency", "replies_ok", "replies_error", 1.0, 0.0)
            .is_none());
        // An idle window burns nothing.
        let idle = SeriesStore::new(4);
        idle.push(frame(1.0, 0, 0, &[]));
        let b = idle
            .burn(4, "latency", "replies_ok", "replies_error", 1e-3, 0.01)
            .unwrap();
        assert_eq!(b.p99_burn, 0.0);
        assert_eq!(b.error_burn, 0.0);
    }

    #[test]
    fn history_json_is_balanced_and_labelled() {
        if !compiled() {
            return;
        }
        let store = SeriesStore::new(4);
        store.push(frame(1.0, 1, 0, &[500]));
        store.push(frame(2.0, 3, 0, &[700]));
        let json = store.history_json(4);
        assert!(json.starts_with("{\"points\":["));
        assert!(json.contains("\"len\":2"));
        assert!(json.contains("\"capacity\":4"));
        assert!(json.contains("\"replies_ok\":2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_series_reads_are_calm() {
        let store = SeriesStore::new(4);
        assert!(store.window(4).is_none());
        assert!(store
            .burn(4, "latency", "replies_ok", "replies_error", 1.0, 0.1)
            .is_none());
        assert_eq!(
            store.history_json(4),
            "{\"points\":[],\"len\":0,\"capacity\":4}"
        );
    }
}
