//! Snapshot sinks: where the periodic exporter sends frames.
//!
//! The exporter thread (owned by the runtime) periodically builds a
//! cumulative [`Frame`], computes the windowed delta vs the previous
//! frame, and hands both to a [`SnapshotSink`]. The sink decides what
//! to do with them — append JSON lines to a file, keep the latest in
//! memory for a scraper, fan out over a channel. Incident dumps from
//! the flight recorder route through the same trait.

use crate::expose::Frame;
use crate::recorder::Event;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Receiver for periodic frames and incident dumps. Implementations
/// must be `Send + Sync`; calls may arrive from the exporter thread
/// and worker threads concurrently.
pub trait SnapshotSink: Send + Sync {
    /// A periodic export: `frame` is cumulative since startup, `delta`
    /// is the window since the previous export (equal to `frame` on
    /// the first export).
    fn export(&self, frame: &Frame, delta: &Frame);

    /// A flight-recorder dump, fired on the first incident (e.g. first
    /// deadline miss). Default: ignored.
    fn incident(&self, _events: &[Event]) {}
}

/// Renders flight-recorder events as a JSON array of
/// `{"seq","t_ns","kind","a","b"}` objects.
#[must_use]
pub fn events_to_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 64 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.seq,
            e.t_ns,
            e.kind.label(),
            e.a,
            e.b
        ));
    }
    out.push(']');
    out
}

/// A sink that appends one JSON line per export to a file:
/// `{"kind":"frame","cumulative":{..},"delta":{..}}` for exports,
/// `{"kind":"incident","events":[..]}` for incident dumps.
#[derive(Debug)]
pub struct JsonLinesSink {
    file: Mutex<std::fs::File>,
}

impl JsonLinesSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying file-creation error.
    pub fn create(path: &Path) -> std::io::Result<JsonLinesSink> {
        Ok(JsonLinesSink {
            file: Mutex::new(std::fs::File::create(path)?),
        })
    }

    fn write_line(&self, line: &str) {
        let mut file = self.file.lock().expect("sink file lock");
        // Export is best-effort: losing a trace line must never take
        // down serving, so the error is swallowed by design.
        let _ = writeln!(file, "{line}");
    }
}

impl SnapshotSink for JsonLinesSink {
    fn export(&self, frame: &Frame, delta: &Frame) {
        self.write_line(&format!(
            "{{\"kind\":\"frame\",\"cumulative\":{},\"delta\":{}}}",
            frame.to_json(),
            delta.to_json()
        ));
    }

    fn incident(&self, events: &[Event]) {
        self.write_line(&format!(
            "{{\"kind\":\"incident\",\"events\":{}}}",
            events_to_json(events)
        ));
    }
}

/// A sink that retains the most recent cumulative and delta frames in
/// memory — the endpoint-less scrape path: a caller (or test) reads
/// [`MemorySink::latest`] and renders it however it likes.
#[derive(Debug, Default)]
pub struct MemorySink {
    latest: Mutex<Option<(Frame, Frame)>>,
    incidents: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The most recent `(cumulative, delta)` pair, if any export ran.
    #[must_use]
    pub fn latest(&self) -> Option<(Frame, Frame)> {
        self.latest.lock().expect("sink lock").clone()
    }

    /// Events from incident dumps, in arrival order.
    #[must_use]
    pub fn incidents(&self) -> Vec<Event> {
        self.incidents.lock().expect("sink lock").clone()
    }
}

impl SnapshotSink for MemorySink {
    fn export(&self, frame: &Frame, delta: &Frame) {
        *self.latest.lock().expect("sink lock") = Some((frame.clone(), delta.clone()));
    }

    fn incident(&self, events: &[Event]) {
        self.incidents
            .lock()
            .expect("sink lock")
            .extend_from_slice(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{EventKind, FlightRecorder};

    #[test]
    fn events_render_as_a_json_array() {
        let rec = FlightRecorder::new(4);
        rec.record(EventKind::DeadlineExpired, 5, 1_000);
        let events = rec.dump();
        let json = events_to_json(&events);
        if crate::span::compiled() {
            assert!(json.contains("\"kind\":\"deadline_expired\""));
            assert!(json.contains("\"a\":5"));
        } else {
            assert_eq!(json, "[]");
        }
    }

    #[test]
    fn json_lines_sink_appends_frames_and_incidents() {
        let dir = std::env::temp_dir().join(format!("pic-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonLinesSink::create(&path).unwrap();
        let frame = Frame {
            at_s: 1.0,
            counters: vec![("done", 3)],
            ..Frame::default()
        };
        sink.export(&frame, &frame);
        sink.incident(&[]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"frame\",\"cumulative\":{"));
        assert!(lines[0].contains("\"done\":3"));
        assert_eq!(lines[1], "{\"kind\":\"incident\",\"events\":[]}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_sink_retains_latest_and_incidents() {
        let sink = MemorySink::new();
        assert!(sink.latest().is_none());
        let mut frame = Frame {
            at_s: 1.0,
            ..Frame::default()
        };
        sink.export(&frame, &frame);
        frame.at_s = 2.0;
        sink.export(&frame, &frame);
        assert_eq!(sink.latest().unwrap().0.at_s, 2.0);
        let rec = FlightRecorder::new(4);
        rec.record(EventKind::WorkerStall, 1, 2);
        sink.incident(&rec.dump());
        if crate::span::compiled() {
            assert_eq!(sink.incidents().len(), 1);
        }
    }
}
