//! # pic-obs — dependency-free observability for the photonic serving stack
//!
//! The runtime and tensor crates need to explain where time and energy
//! go without paying for it on the hot path. This crate provides the
//! four pieces, with **zero external dependencies** (consistent with
//! the workspace's vendored-offline policy):
//!
//! * [`hist`] — lock-free log₂-bucketed [`LatencyHistogram`] with
//!   `merge`/`delta`/snapshot, and [`AtomicF64`] accumulators.
//! * [`span`] — the [`Stage`] taxonomy of the request lifecycle,
//!   per-stage stats tables ([`StageStats`]), ambient RAII [`Span`]s
//!   recording self time through a thread-local collector, and
//!   explicit [`StageTimer`]s.
//! * [`recorder`] — a seqlock ring-buffer [`FlightRecorder`] of recent
//!   structured events with a one-shot incident latch.
//! * [`expose`]/[`export`] — a unified [`Frame`] snapshot rendered as
//!   Prometheus text or JSON, and [`SnapshotSink`]s for the periodic
//!   exporter (JSON-lines file, in-memory scrape).
//! * [`trace`] — request-scoped distributed tracing: deterministic
//!   [`TraceId`]s, span-tree [`TraceCollector`]s threaded through the
//!   request, head + slow-outlier sampling ([`Tracer`]), and a bounded
//!   [`TraceStore`] ring served as JSON.
//! * [`series`] — a windowed metrics time series ([`SeriesStore`]):
//!   a ring of per-tick [`Frame`] deltas powering `/metrics/history`
//!   and SLO burn-rate gauges ([`BurnGauges`]).
//!
//! ## Cost model
//!
//! Recording is wait-free on the writer side: a histogram record is
//! two relaxed `fetch_add`s, a flight-recorder event is six relaxed
//! atomic stores, a span is two `Instant::now()` calls plus a TLS
//! push/pop. The `obs-off` feature compiles all recording to empty
//! inline functions for an A/B proof that instrumentation is not the
//! bottleneck.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod export;
pub mod expose;
pub mod hist;
pub mod recorder;
pub mod series;
pub mod span;
pub mod trace;

pub use export::{events_to_json, JsonLinesSink, MemorySink, SnapshotSink};
pub use expose::{prom_label_value, Frame, StageFrame};
pub use hist::{AtomicF64, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use recorder::{Event, EventKind, FlightRecorder, DEFAULT_RECORDER_CAPACITY};
pub use series::{BurnGauges, SeriesPoint, SeriesStore};
pub use span::{
    collector_installed, install_collector, record_stage_ns, Span, Stage, StageSnapshot,
    StageStats, StageTimer, STAGE_COUNT,
};
pub use trace::{
    SpanRecord, TraceCollector, TraceContext, TraceId, TraceRecord, TraceStore, Tracer,
};

/// Whether instrumentation is compiled in (`false` when the `obs-off`
/// feature is enabled).
#[must_use]
pub const fn enabled() -> bool {
    span::compiled()
}
