//! Lock-free log₂ latency histograms and atomic `f64` accumulators.
//!
//! [`LatencyHistogram`] is the recording side: workers `record` into
//! atomics with no locks on the hot path. [`HistogramSnapshot`] is the
//! reading side: a plain-integer copy whose `count` is *derived from the
//! bucket sums*, so every snapshot is internally consistent even while
//! other threads keep recording. Snapshots subtract ([`HistogramSnapshot::delta`])
//! to turn cumulative histograms into windowed ones, which is what lets
//! an exporter compute rates between two exports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Power-of-two bucket count of the latency histogram: bucket `i` holds
/// samples in `[2^i, 2^{i+1})` nanoseconds, which covers ~584 years in
/// the last bucket — nothing saturates.
pub const BUCKETS: usize = 64;

/// The latency at quantile `q` over a plain bucket array, interpolated
/// linearly within its log₂ bucket.
///
/// `total` is the rank base — under concurrent recording a caller's
/// separately-read `count` can exceed the bucket sums it reads a moment
/// later, so a rank that walks off the end of the recorded samples is
/// clamped to the top of the highest non-empty bucket instead of
/// reporting the table's `2^64` ns (≈584 yr) upper edge.
fn quantile_over(buckets: &[u64; BUCKETS], total: u64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile in [0, 1], got {q}");
    if total == 0 {
        return 0.0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    let mut highest_nonempty = None;
    for (i, &here) in buckets.iter().enumerate() {
        if here == 0 {
            continue;
        }
        highest_nonempty = Some(i);
        seen += here;
        if seen >= rank {
            let lower = 2f64.powi(i as i32);
            let upper = 2f64.powi(i as i32 + 1);
            let position = (rank - (seen - here)) as f64 / here as f64;
            return (lower + (upper - lower) * position) / 1e9;
        }
    }
    match highest_nonempty {
        Some(i) => 2f64.powi(i as i32 + 1) / 1e9,
        None => 0.0,
    }
}

/// A log₂-bucketed latency histogram over nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&self, nanos: u64) {
        let bucket = (63 - nanos.max(1).leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in seconds (0 when empty).
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1e9
    }

    /// The latency at quantile `q ∈ [0, 1]`, in seconds, interpolated
    /// linearly within its log₂ bucket (0 when empty).
    ///
    /// Bucket `i` spans `[2^i, 2^{i+1})` ns; the rank's position among
    /// the bucket's samples places the estimate between those edges, so
    /// quantiles no longer snap to powers of two (a bucket holding the
    /// single top-ranked sample still reports its upper edge, matching
    /// the pre-interpolation behaviour). When concurrent recording makes
    /// the separately-read `count` exceed the bucket sums (the rank then
    /// outruns every recorded sample), the result clamps to the top of
    /// the highest non-empty bucket instead of the `2^64` ns table edge.
    ///
    /// # Panics
    ///
    /// Panics if `q` leaves `[0, 1]`.
    #[must_use]
    pub fn quantile_s(&self, q: f64) -> f64 {
        let buckets = self.load_buckets();
        quantile_over(&buckets, self.count(), q)
    }

    /// Adds every sample of `other` into `self` (bucket-wise). Merging
    /// then taking quantiles is equivalent to having recorded both
    /// streams into one histogram.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A consistent plain-integer copy of the histogram. The snapshot's
    /// `count` is the sum of the bucket counts it actually read, so
    /// `count == Σ buckets` holds in every snapshot even while other
    /// threads keep recording.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.load_buckets(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }

    /// The samples recorded since `earlier` was snapshotted — the
    /// windowed view an exporter needs to report rates and per-window
    /// quantiles from a cumulative histogram.
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        self.snapshot().delta(earlier)
    }

    fn load_buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// A point-in-time plain copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` spans `[2^i, 2^{i+1})` ns).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded nanoseconds.
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Samples in the snapshot — by construction the sum of the bucket
    /// counts.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether the snapshot holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Mean latency in seconds (0 when empty).
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / n as f64 / 1e9
    }

    /// The latency at quantile `q ∈ [0, 1]`, in seconds (see
    /// [`LatencyHistogram::quantile_s`]).
    ///
    /// # Panics
    ///
    /// Panics if `q` leaves `[0, 1]`.
    #[must_use]
    pub fn quantile_s(&self, q: f64) -> f64 {
        quantile_over(&self.buckets, self.count(), q)
    }

    /// The top of the highest non-empty bucket — the tightest upper
    /// bound on the largest recorded sample the log₂ buckets can give.
    #[must_use]
    pub fn max_s(&self) -> f64 {
        self.quantile_s(1.0)
    }

    /// Adds every sample of `other` into `self` (bucket-wise) — the
    /// snapshot-side counterpart of [`LatencyHistogram::merge`], used
    /// when rolling per-node frames up into one cluster frame.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum_ns += other.sum_ns;
    }

    /// The samples recorded between `earlier` and `self` (bucket-wise
    /// saturating subtraction, so a mismatched pair degrades to zeros
    /// instead of wrapping).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (d, (now, was)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *d = now.saturating_sub(*was);
        }
        HistogramSnapshot {
            buckets,
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
        }
    }
}

/// An `f64` accumulator built on atomic compare-and-swap of the bit
/// pattern (std has no `AtomicF64`).
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// A zeroed accumulator.
    #[must_use]
    pub fn new() -> AtomicF64 {
        AtomicF64::default()
    }

    /// Adds `v` atomically.
    pub fn add(&self, v: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Overwrites the value (for gauges).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The accumulated value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(1_000); // ~1 µs
        }
        h.record(1_000_000_000); // 1 s outlier
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_s(0.5);
        assert!(p50 < 3e-6, "p50 {p50} should sit at the µs cluster");
        let p99 = h.quantile_s(0.99);
        assert!(p99 < 3e-6, "p99 {p99} still inside the cluster of 99");
        let p100 = h.quantile_s(1.0);
        assert!(p100 >= 1.0, "max must see the outlier, got {p100}");
        assert!(h.mean_s() > 0.009 && h.mean_s() < 0.011);
    }

    #[test]
    fn quantiles_interpolate_within_their_bucket() {
        // 100 identical 1000 ns samples all land in bucket 9
        // ([512, 1024) ns): rank r interpolates to 512 + 512·(r/100).
        let h = LatencyHistogram::default();
        for _ in 0..100 {
            h.record(1_000);
        }
        assert!((h.quantile_s(0.5) - 768e-9).abs() < 1e-15, "mid-bucket p50");
        assert!(
            (h.quantile_s(0.25) - 640e-9).abs() < 1e-15,
            "quarter-bucket p25"
        );
        assert!((h.quantile_s(1.0) - 1024e-9).abs() < 1e-15, "full bucket");
        // A single top-ranked sample still resolves to its bucket's
        // upper edge (the pre-interpolation convention).
        let h = LatencyHistogram::default();
        h.record(1_000);
        h.record(1_000_000_000); // bucket 29: [2^29, 2^30) ns
        let p100 = h.quantile_s(1.0);
        assert!((p100 - 2f64.powi(30) / 1e9).abs() < 1e-12);
        // And the two-sample median sits at bucket 9's upper edge, not
        // snapped to a whole power of two of seconds.
        assert!((h.quantile_s(0.5) - 1024e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_s(0.99), 0.0);
        assert_eq!(h.mean_s(), 0.0);
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().max_s(), 0.0);
    }

    #[test]
    fn overrun_rank_clamps_to_the_highest_nonempty_bucket() {
        // Regression: a snapshot racing `record` can observe `count`
        // ahead of the bucket increments; the rank then exceeds every
        // recorded sample and the old walk returned the table's 2^64 ns
        // (≈584 yr) upper edge. Simulate the race by bumping `count`
        // without touching a bucket.
        let h = LatencyHistogram::default();
        h.record(1_000); // bucket 9, upper edge 1024 ns
        h.count.fetch_add(1, Ordering::Relaxed); // racing increment
        let p100 = h.quantile_s(1.0);
        assert!(
            (p100 - 1024e-9).abs() < 1e-15,
            "overrun rank must clamp to the 1024 ns bucket top, got {p100}"
        );
        // With no recorded samples at all, even a non-zero count yields 0.
        let h = LatencyHistogram::default();
        h.count.fetch_add(3, Ordering::Relaxed);
        assert_eq!(h.quantile_s(0.5), 0.0);
    }

    #[test]
    fn single_sample_quantiles_all_report_its_bucket_edge() {
        let h = LatencyHistogram::default();
        h.record(1_000); // bucket 9: [512, 1024) ns
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile_s(q);
            assert!(
                (v - 1024e-9).abs() < 1e-15,
                "q={q}: a lone sample is always the ranked one, got {v}"
            );
        }
        assert!((h.mean_s() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn max_bucket_survives_merge_without_overflow() {
        // u64::MAX ns lands in the top bucket (63). Merging two
        // top-bucket histograms must keep counts exact and quantiles
        // finite (the bucket's upper edge is 2^64 ns ≈ 584 yr).
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        for _ in 0..3 {
            a.record(u64::MAX);
            b.record(u64::MAX);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        let s = a.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 6);
        let max = s.max_s();
        assert!(max.is_finite());
        assert!(max >= 2f64.powi(63) / 1e9, "top-bucket edge, got {max}");
        // sum_ns wraps modulo 2^64 under extreme inputs; the mean must
        // still be finite (garbage-tolerant, never NaN/Inf).
        assert!(s.mean_s().is_finite());
    }

    #[test]
    fn delta_against_a_wrapped_counter_saturates_to_empty() {
        // If the "earlier" snapshot is actually *ahead* (counter wrap,
        // restart, or mismatched pair), delta must saturate to zero
        // everywhere instead of wrapping to ~2^64 phantom samples.
        let mut earlier = HistogramSnapshot::default();
        earlier.buckets[9] = u64::MAX;
        earlier.sum_ns = u64::MAX;
        let mut later = HistogramSnapshot::default();
        later.buckets[9] = 5;
        later.sum_ns = 5_000;
        let d = later.delta(&earlier);
        assert!(d.is_empty(), "wrapped counter must not produce samples");
        assert_eq!(d.sum_ns, 0);
        assert_eq!(d.quantile_s(0.99), 0.0);
        // And a partially-wrapped pair only zeroes the wrapped bucket.
        let mut mixed = later.clone();
        mixed.buckets[10] = 7;
        let d = mixed.delta(&earlier);
        assert_eq!(d.buckets[9], 0);
        assert_eq!(d.buckets[10], 7);
    }

    #[test]
    fn merge_then_quantile_matches_record_then_quantile() {
        // Two shards record disjoint streams; merging them must yield
        // exactly the histogram a single recorder would have built.
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        let whole = LatencyHistogram::default();
        for i in 0..500u64 {
            let ns = 100 + i * 37;
            if i % 3 == 0 {
                a.record(ns);
            } else {
                b.record(ns);
            }
            whole.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.snapshot(), whole.snapshot());
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert!(
                (a.quantile_s(q) - whole.quantile_s(q)).abs() < 1e-15,
                "q={q}: merged {} vs whole {}",
                a.quantile_s(q),
                whole.quantile_s(q)
            );
        }
        assert!((a.mean_s() - whole.mean_s()).abs() < 1e-15);
    }

    #[test]
    fn snapshot_merge_matches_histogram_merge() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        for i in 0..300u64 {
            if i % 2 == 0 {
                a.record(50 + i * 11);
            } else {
                b.record(50 + i * 11);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(merged, a.snapshot());
        assert_eq!(merged.count(), 300);
    }

    #[test]
    fn delta_isolates_the_window() {
        let h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record(1_000);
        }
        let earlier = h.snapshot();
        for _ in 0..5 {
            h.record(1 << 20); // ~1 ms, bucket 20
        }
        let window = h.delta(&earlier);
        assert_eq!(window.count(), 5, "only the post-snapshot samples");
        assert_eq!(window.buckets[9], 0, "older bucket excluded");
        assert_eq!(window.buckets[20], 5);
        // The window's quantiles describe the window alone.
        assert!(window.quantile_s(0.5) > 1e-4);
        // A self-delta is empty; a reversed delta saturates to zero.
        assert!(h.delta(&h.snapshot()).is_empty());
        assert!(earlier.delta(&h.snapshot()).is_empty());
    }

    #[test]
    fn snapshot_count_equals_bucket_sum_under_concurrent_recording() {
        let h = Arc::new(LatencyHistogram::default());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..20_000u64 {
                        h.record(1 + (i << (w % 8)));
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let s = h.snapshot();
            assert_eq!(
                s.count(),
                s.buckets.iter().sum::<u64>(),
                "snapshot count is derived, so this must hold by construction"
            );
            // Quantiles on a mid-flight snapshot stay inside the table.
            assert!(s.quantile_s(1.0) < 2f64.powi(BUCKETS as i32) / 1e9);
        }
        for t in writers {
            t.join().expect("writer finishes");
        }
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn atomic_f64_accumulates_across_threads() {
        let acc = Arc::new(AtomicF64::default());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let acc = Arc::clone(&acc);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        acc.add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread finishes");
        }
        assert!((acc.get() - 4000.0).abs() < 1e-9);
        acc.set(1.25);
        assert!((acc.get() - 1.25).abs() < 1e-15);
    }
}
