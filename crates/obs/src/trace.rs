//! Request-scoped distributed tracing: deterministic trace ids, span
//! trees, and a bounded ring of sampled trace records.
//!
//! A front-end mints a [`TraceId`] per request (SplitMix64 over a
//! per-server seed plus a request counter — deterministic, no `rand`
//! dependency) and decides *head sampling* there: one in every
//! `sample_every` requests gets a [`TraceCollector`] attached. The
//! collector rides inside the request through admission, batch
//! formation, the executor, and (under `pic-cluster`) across the
//! shard fan-out, accumulating [`SpanRecord`]s. At completion the
//! front-end calls [`Tracer::finish`]: head-sampled traces are always
//! kept, and *any* traced request that exceeded the slow-request
//! threshold is kept too, so tail latency exemplars survive even at
//! low sampling rates.
//!
//! Kept traces land in a bounded [`TraceStore`] ring and are served
//! as JSON span trees (`GET /v1/traces`, `GET /v1/traces/<id>`): each
//! span carries its stage label, wall time, modeled energy, queue
//! depth at entry, owning node, and free-form annotations (retries,
//! batching decisions).
//!
//! Under `obs-off` every method compiles to a no-op and
//! [`Tracer::mint`] never allocates a collector.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

use crate::expose::push_json_str;

/// SplitMix64: the standard 64-bit finalizer-style mixer. Good
/// avalanche from sequential inputs, which is exactly the trace-id
/// use case (seed + counter).
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit request trace identifier, rendered as 16 lowercase hex
/// digits in APIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Deterministically derives the id for request `n` on a server
    /// with the given `seed`. Distinct seeds give disjoint-looking
    /// sequences; the same (seed, n) always yields the same id.
    #[must_use]
    pub fn mint(seed: u64, n: u64) -> TraceId {
        TraceId(splitmix64(
            seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ))
    }

    /// 16-digit lowercase hex form used in URLs and JSON.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the hex form back; `None` on malformed input.
    #[must_use]
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// One span in a trace tree. Times are nanoseconds since the trace's
/// root opened, so a tree is self-contained and clock-free.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage label (`"request"`, `"admit"`, `"queue"`, `"service"`,
    /// `"coordinator"`, `"shard"`, ...).
    pub label: &'static str,
    /// Index of the parent span within the trace; `None` for the root.
    pub parent: Option<u32>,
    /// Open time, ns since the root span opened.
    pub start_ns: u64,
    /// Close time, ns since the root span opened.
    pub end_ns: u64,
    /// Modeled energy attributed to this span, joules.
    pub energy_j: f64,
    /// Queue depth observed when the span opened, if meaningful.
    pub queue_depth: Option<u64>,
    /// Cluster node that executed this span, if any.
    pub node: Option<u64>,
    /// Free-form annotation (retry/failover notes, batching info).
    pub annotation: Option<String>,
}

impl SpanRecord {
    /// Span wall time in nanoseconds (0 if the span never closed).
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The per-request trace context carried inside a request: the shared
/// collector plus the span index new child spans should parent under.
#[derive(Debug, Clone)]
pub struct TraceContext {
    /// Shared span collector for the whole request.
    pub collector: Arc<TraceCollector>,
    /// Parent span index for spans opened from this context.
    pub parent: Option<u32>,
}

impl TraceContext {
    /// A context rooted at the collector's root span.
    #[must_use]
    pub fn new(collector: Arc<TraceCollector>) -> TraceContext {
        TraceContext {
            collector,
            parent: Some(0),
        }
    }

    /// The same collector re-parented under `parent` — used when a
    /// coordinator hands a shard sub-request its own child span.
    #[must_use]
    pub fn child(&self, parent: u32) -> TraceContext {
        TraceContext {
            collector: Arc::clone(&self.collector),
            parent: Some(parent),
        }
    }
}

/// Accumulates the spans of one traced request. Cheap to share
/// (`Arc`), internally synchronised with a single short-held mutex —
/// only *sampled* requests ever allocate one, so the unsampled
/// fast path carries just an `Option` check.
#[derive(Debug)]
pub struct TraceCollector {
    id: TraceId,
    head_sampled: bool,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceCollector {
    /// Opens a collector whose root span (`"request"`, index 0)
    /// starts now.
    #[must_use]
    pub fn start(id: TraceId, head_sampled: bool) -> Arc<TraceCollector> {
        let root = SpanRecord {
            label: "request",
            parent: None,
            start_ns: 0,
            end_ns: 0,
            energy_j: 0.0,
            queue_depth: None,
            node: None,
            annotation: None,
        };
        Arc::new(TraceCollector {
            id,
            head_sampled,
            epoch: Instant::now(),
            spans: Mutex::new(vec![root]),
        })
    }

    /// This trace's id.
    #[must_use]
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Whether this trace was head-sampled (vs. minted only for
    /// potential slow-request capture).
    #[must_use]
    pub fn head_sampled(&self) -> bool {
        self.head_sampled
    }

    /// Nanoseconds from the root open to `at` (0 if `at` predates it).
    #[must_use]
    pub fn offset_ns(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos() as u64)
    }

    /// Opens a span now; returns its index for [`TraceCollector::end`].
    pub fn begin(&self, label: &'static str, parent: Option<u32>) -> Option<u32> {
        if !crate::enabled() {
            return None;
        }
        let start_ns = self.offset_ns(Instant::now());
        Some(self.push(SpanRecord {
            label,
            parent: parent.or(Some(0)),
            start_ns,
            end_ns: start_ns,
            energy_j: 0.0,
            queue_depth: None,
            node: None,
            annotation: None,
        }))
    }

    /// Closes the span opened by [`TraceCollector::begin`] now.
    pub fn end(&self, idx: Option<u32>) {
        let Some(idx) = idx else { return };
        let end_ns = self.offset_ns(Instant::now());
        let mut spans = self.spans.lock().unwrap();
        if let Some(span) = spans.get_mut(idx as usize) {
            span.end_ns = end_ns;
        }
    }

    /// Records a span covering `[start, end]` measured on the caller's
    /// own clock — for stages that are timed anyway and only reported
    /// to the trace afterwards.
    pub fn span_between(
        &self,
        label: &'static str,
        parent: Option<u32>,
        start: Instant,
        end: Instant,
    ) -> Option<u32> {
        if !crate::enabled() {
            return None;
        }
        let start_ns = self.offset_ns(start);
        let end_ns = self.offset_ns(end).max(start_ns);
        Some(self.push(SpanRecord {
            label,
            parent: parent.or(Some(0)),
            start_ns,
            end_ns,
            energy_j: 0.0,
            queue_depth: None,
            node: None,
            annotation: None,
        }))
    }

    /// Records a span from raw offsets — for *modeled* sub-stages
    /// (write/compute/digitize) partitioned out of a measured parent.
    pub fn span_offsets(
        &self,
        label: &'static str,
        parent: Option<u32>,
        start_ns: u64,
        end_ns: u64,
    ) -> Option<u32> {
        if !crate::enabled() {
            return None;
        }
        Some(self.push(SpanRecord {
            label,
            parent: parent.or(Some(0)),
            start_ns,
            end_ns: end_ns.max(start_ns),
            energy_j: 0.0,
            queue_depth: None,
            node: None,
            annotation: None,
        }))
    }

    fn push(&self, span: SpanRecord) -> u32 {
        let mut spans = self.spans.lock().unwrap();
        let idx = spans.len() as u32;
        spans.push(span);
        idx
    }

    /// Sets the queue depth observed at a span's entry.
    pub fn set_queue_depth(&self, idx: Option<u32>, depth: u64) {
        self.update(idx, |s| s.queue_depth = Some(depth));
    }

    /// Sets the cluster node a span executed on.
    pub fn set_node(&self, idx: Option<u32>, node: u64) {
        self.update(idx, |s| s.node = Some(node));
    }

    /// Adds modeled energy to a span.
    pub fn add_energy_j(&self, idx: Option<u32>, energy_j: f64) {
        self.update(idx, |s| s.energy_j += energy_j);
    }

    /// Appends a free-form annotation to a span (joined with `"; "`).
    pub fn annotate(&self, idx: Option<u32>, note: &str) {
        self.update(idx, |s| match &mut s.annotation {
            Some(existing) => {
                existing.push_str("; ");
                existing.push_str(note);
            }
            None => s.annotation = Some(note.to_string()),
        });
    }

    fn update(&self, idx: Option<u32>, f: impl FnOnce(&mut SpanRecord)) {
        if !crate::enabled() {
            return;
        }
        let Some(idx) = idx else { return };
        let mut spans = self.spans.lock().unwrap();
        if let Some(span) = spans.get_mut(idx as usize) {
            f(span);
        }
    }

    /// Seals the trace: closes the root span at `wall_ns` and returns
    /// the immutable record.
    #[must_use]
    pub fn finish(&self, wall_ns: u64) -> TraceRecord {
        let mut spans = self.spans.lock().unwrap().clone();
        if let Some(root) = spans.first_mut() {
            root.end_ns = wall_ns;
        }
        TraceRecord {
            id: self.id,
            head_sampled: self.head_sampled,
            wall_ns,
            unix_s: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map_or(0.0, |d| d.as_secs_f64()),
            spans,
        }
    }
}

/// An immutable, completed trace: the root wall time plus the flat
/// span array (tree encoded by parent indices).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace id.
    pub id: TraceId,
    /// Whether the trace was head-sampled.
    pub head_sampled: bool,
    /// End-to-end wall time of the request, nanoseconds.
    pub wall_ns: u64,
    /// Capture time, seconds since the Unix epoch.
    pub unix_s: f64,
    /// All spans; index 0 is the root.
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// Self time of span `idx`: its wall time minus the wall time of
    /// its direct children, clamped at 0.
    #[must_use]
    pub fn self_ns(&self, idx: usize) -> u64 {
        let child_ns: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(idx as u32))
            .map(SpanRecord::wall_ns)
            .sum();
        self.spans[idx].wall_ns().saturating_sub(child_ns)
    }

    /// Sum of all spans' self times. For a tree of sequential
    /// (non-overlapping) children this telescopes to the root wall
    /// time exactly; clamping makes pathological overlap show up as a
    /// deficit instead of cancelling out.
    #[must_use]
    pub fn self_time_sum_ns(&self) -> u64 {
        (0..self.spans.len()).map(|i| self.self_ns(i)).sum()
    }

    /// One-line summary object for `GET /v1/traces`.
    #[must_use]
    pub fn summary_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"id\":");
        push_json_str(&mut out, &self.id.to_hex());
        out.push_str(&format!(
            ",\"unix_s\":{:.3},\"wall_ms\":{:.3},\"spans\":{},\"head_sampled\":{}}}",
            self.unix_s,
            self.wall_ns as f64 / 1e6,
            self.spans.len(),
            self.head_sampled
        ));
        out
    }

    /// Full span-tree JSON for `GET /v1/traces/<id>`: a flat `spans`
    /// array where each entry names its parent index.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"id\":");
        push_json_str(&mut out, &self.id.to_hex());
        out.push_str(&format!(
            ",\"unix_s\":{:.3},\"wall_ns\":{},\"head_sampled\":{},\"self_time_sum_ns\":{},\"spans\":[",
            self.unix_s,
            self.wall_ns,
            self.head_sampled,
            self.self_time_sum_ns()
        ));
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"i\":{i},\"parent\":"));
            match span.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"stage\":");
            push_json_str(&mut out, span.label);
            out.push_str(&format!(
                ",\"start_ns\":{},\"wall_ns\":{},\"self_ns\":{},\"energy_j\":{:e}",
                span.start_ns,
                span.wall_ns(),
                self.self_ns(i),
                span.energy_j
            ));
            match span.queue_depth {
                Some(d) => out.push_str(&format!(",\"queue_depth\":{d}")),
                None => out.push_str(",\"queue_depth\":null"),
            }
            match span.node {
                Some(n) => out.push_str(&format!(",\"node\":{n}")),
                None => out.push_str(",\"node\":null"),
            }
            out.push_str(",\"note\":");
            match &span.annotation {
                Some(note) => push_json_str(&mut out, note),
                None => out.push_str("null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Bounded ring of recent [`TraceRecord`]s. Writers claim a slot via
/// an atomic cursor so concurrent pushes never contend on the same
/// slot; each slot is an independently locked cell, held only for the
/// `Arc` swap.
#[derive(Debug)]
pub struct TraceStore {
    slots: Vec<Mutex<Option<Arc<TraceRecord>>>>,
    cursor: AtomicU64,
}

impl TraceStore {
    /// A store keeping the last `capacity` traces (rounded up to 1).
    #[must_use]
    pub fn new(capacity: usize) -> TraceStore {
        let capacity = capacity.max(1);
        TraceStore {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity in traces.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever stored (including overwritten ones).
    #[must_use]
    pub fn stored(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Inserts a trace, overwriting the oldest once full.
    pub fn push(&self, record: Arc<TraceRecord>) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap() = Some(record);
    }

    /// Looks a trace up by id.
    #[must_use]
    pub fn get(&self, id: TraceId) -> Option<Arc<TraceRecord>> {
        self.slots.iter().find_map(|slot| {
            let guard = slot.lock().unwrap();
            guard.as_ref().filter(|r| r.id == id).cloned()
        })
    }

    /// The most recent `n` traces, newest first.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        let len = self.slots.len() as u64;
        let cursor = self.cursor.load(Ordering::Relaxed);
        let mut out = Vec::new();
        let mut seq = cursor;
        while seq > 0 && out.len() < n && cursor - seq < len {
            seq -= 1;
            let slot = &self.slots[(seq % len) as usize];
            if let Some(record) = slot.lock().unwrap().as_ref() {
                out.push(Arc::clone(record));
            }
        }
        out
    }

    /// JSON array of summaries for the most recent `n` traces.
    #[must_use]
    pub fn summaries_json(&self, n: usize) -> String {
        let mut out = String::from("{\"traces\":[");
        for (i, record) in self.recent(n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&record.summary_json());
        }
        out.push_str(&format!("],\"stored\":{}}}", self.stored()));
        out
    }
}

/// Front-end tracer: owns the id seed, request counter, sampling
/// policy, and the [`TraceStore`] ring.
#[derive(Debug)]
pub struct Tracer {
    seed: u64,
    counter: AtomicU64,
    sample_every: u64,
    slow_capture: bool,
    store: TraceStore,
}

impl Tracer {
    /// A tracer head-sampling one in `sample_every` requests
    /// (0 disables head sampling) into a ring of `capacity` traces.
    /// When `slow_capture` is set, *every* request is traced so slow
    /// outliers can be kept at finish; otherwise only head-sampled
    /// requests pay for a collector.
    #[must_use]
    pub fn new(seed: u64, sample_every: u64, capacity: usize, slow_capture: bool) -> Tracer {
        Tracer {
            seed,
            counter: AtomicU64::new(0),
            sample_every,
            slow_capture,
            store: TraceStore::new(capacity),
        }
    }

    /// Total requests seen (sampled or not).
    #[must_use]
    pub fn minted(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// The backing trace ring.
    #[must_use]
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Called once per request: advances the counter and returns a
    /// collector when this request should be traced (head-sampled, or
    /// slow-capture is armed). Returns `None` — no allocation — for
    /// unsampled requests and always under `obs-off`.
    pub fn mint(&self) -> Option<Arc<TraceCollector>> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if !crate::enabled() {
            return None;
        }
        let head = self.sample_every > 0 && n.is_multiple_of(self.sample_every);
        if !head && !self.slow_capture {
            return None;
        }
        Some(TraceCollector::start(TraceId::mint(self.seed, n), head))
    }

    /// Called at request completion: keeps the trace if it was
    /// head-sampled or exceeded the slow threshold. Returns whether
    /// it was stored.
    pub fn finish(
        &self,
        collector: &TraceCollector,
        wall: Duration,
        slow: Option<Duration>,
    ) -> bool {
        if !crate::enabled() {
            return false;
        }
        let keep = collector.head_sampled || slow.is_some_and(|t| wall > t);
        if keep {
            self.store
                .push(Arc::new(collector.finish(wall.as_nanos() as u64)));
        }
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled() -> bool {
        !cfg!(feature = "obs-off")
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = TraceId::mint(42, 0);
        let b = TraceId::mint(42, 0);
        assert_eq!(a, b);
        assert_ne!(TraceId::mint(42, 1), a);
        assert_ne!(TraceId::mint(43, 0), a);
        // Sequential counters avalanche into well-spread ids.
        let ids: std::collections::HashSet<u64> =
            (0..1000).map(|n| TraceId::mint(7, n).0).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn hex_round_trips() {
        let id = TraceId::mint(9, 123);
        assert_eq!(id.to_hex().len(), 16);
        assert_eq!(TraceId::parse_hex(&id.to_hex()), Some(id));
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(TraceId::parse_hex("zz"), None);
        assert_eq!(TraceId::parse_hex("00000000000000000"), None);
        assert_eq!(TraceId::parse_hex("ff"), Some(TraceId(255)));
    }

    #[test]
    fn head_sampling_follows_the_rate() {
        let tracer = Tracer::new(1, 4, 16, false);
        let sampled: Vec<bool> = (0..8).map(|_| tracer.mint().is_some()).collect();
        if !compiled() {
            assert!(sampled.iter().all(|s| !s));
            return;
        }
        assert_eq!(
            sampled,
            vec![true, false, false, false, true, false, false, false]
        );
        assert_eq!(tracer.minted(), 8);
    }

    #[test]
    fn slow_capture_mints_every_request_but_keeps_only_outliers() {
        if !compiled() {
            return;
        }
        let tracer = Tracer::new(1, 0, 16, true);
        let c = tracer.mint().expect("slow-capture arms every request");
        assert!(!c.head_sampled());
        // Fast request: dropped.
        assert!(!tracer.finish(
            &c,
            Duration::from_millis(1),
            Some(Duration::from_millis(10))
        ));
        assert_eq!(tracer.store().stored(), 0);
        // Slow request: kept.
        let c = tracer.mint().unwrap();
        assert!(tracer.finish(
            &c,
            Duration::from_millis(20),
            Some(Duration::from_millis(10))
        ));
        assert_eq!(tracer.store().stored(), 1);
    }

    #[test]
    fn span_tree_nests_and_self_times_telescope() {
        if !compiled() {
            return;
        }
        let c = TraceCollector::start(TraceId::mint(0, 0), true);
        let admit = c.span_offsets("admit", Some(0), 0, 100);
        let queue = c.span_offsets("queue", Some(0), 100, 400);
        c.set_queue_depth(queue, 7);
        let service = c.span_offsets("service", Some(0), 400, 1000);
        c.add_energy_j(service, 1.5e-6);
        c.annotate(service, "device 3");
        c.annotate(service, "batched_with 4");
        let _write = c.span_offsets("write", service, 400, 600);
        let _compute = c.span_offsets("compute", service, 600, 900);
        assert_eq!(admit, Some(1));
        let record = c.finish(1000);
        // Root self = 1000 - (100+300+600) = 0; service self = 600-500.
        assert_eq!(record.self_ns(0), 0);
        assert_eq!(record.self_ns(3), 100);
        // Telescoping: sum of self times == root wall for a
        // sequential tree.
        assert_eq!(record.self_time_sum_ns(), 1000);
        let json = record.to_json();
        assert!(json.contains("\"stage\":\"service\""));
        assert!(json.contains("\"queue_depth\":7"));
        assert!(json.contains("\"note\":\"device 3; batched_with 4\""));
        assert!(json.contains("\"self_time_sum_ns\":1000"));
    }

    #[test]
    fn pre_epoch_instants_clamp_to_zero() {
        if !compiled() {
            return;
        }
        let before = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let c = TraceCollector::start(TraceId::mint(0, 1), true);
        let span = c.span_between("admit", Some(0), before, Instant::now());
        let record = c.finish(10);
        assert_eq!(record.spans[span.unwrap() as usize].start_ns, 0);
    }

    #[test]
    fn store_ring_overwrites_oldest_and_finds_by_id() {
        if !compiled() {
            return;
        }
        let store = TraceStore::new(2);
        for n in 0..3u64 {
            let c = TraceCollector::start(TraceId::mint(5, n), true);
            store.push(Arc::new(c.finish(n + 1)));
        }
        assert_eq!(store.stored(), 3);
        assert!(store.get(TraceId::mint(5, 0)).is_none());
        assert!(store.get(TraceId::mint(5, 1)).is_some());
        assert!(store.get(TraceId::mint(5, 2)).is_some());
        let recent = store.recent(8);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].id, TraceId::mint(5, 2));
        let json = store.summaries_json(8);
        assert!(json.contains("\"stored\":3"));
        assert!(json.contains(&TraceId::mint(5, 2).to_hex()));
    }

    #[test]
    fn obs_off_mints_nothing_and_records_nothing() {
        if compiled() {
            return;
        }
        let tracer = Tracer::new(1, 1, 4, true);
        assert!(tracer.mint().is_none());
        assert_eq!(tracer.minted(), 1);
        let c = TraceCollector::start(TraceId::mint(0, 0), true);
        assert_eq!(c.begin("admit", None), None);
        assert_eq!(c.span_offsets("queue", None, 0, 5), None);
        let record = c.finish(100);
        assert_eq!(record.spans.len(), 1);
    }
}
