//! Stage taxonomy, per-stage statistics, and the span/timer API.
//!
//! The request lifecycle is fixed and small, so stages are an enum, not
//! strings: `submit → queue → admission → write → compute → digitize →
//! merge → respond`. Each stage owns a [`LatencyHistogram`] plus a
//! modeled-energy accumulator in a [`StageStats`] table.
//!
//! Two recording APIs:
//!
//! * [`StageTimer`] — explicit: the caller holds a `&StageStats` and the
//!   timer records its wall-clock lifetime into it on drop. Used where
//!   the registry is in hand (scheduler, submit path).
//! * [`Span`] — ambient: records into the thread's *installed collector*
//!   ([`install_collector`]), so deep library code (the tensor kernels)
//!   can be instrumented without threading a registry through every
//!   signature. Spans keep a thread-local stack and record **self
//!   time** (own elapsed minus enclosed child spans), so nested spans
//!   never double-count a nanosecond. On a thread with no collector a
//!   span is a no-op.
//!
//! With the `obs-off` feature both APIs compile to empty inlined
//! no-ops: zero branches, zero clock reads on the hot path.

use crate::hist::{AtomicF64, HistogramSnapshot, LatencyHistogram};

/// One stage of the request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Request validation + intake enqueue (caller thread).
    Submit = 0,
    /// Pending-queue wait: accepted → picked into a dispatch batch.
    Queue = 1,
    /// Admission: policy selection + batch formation (dispatcher).
    Admission = 2,
    /// Optical tile write: streaming weights through the pSRAM path.
    Write = 3,
    /// Analog compute: the photonic matvec over the cached gain matrix.
    Compute = 4,
    /// Digitisation: per-row eoADC threshold-table conversion.
    Digitize = 5,
    /// Digital merge: partial-sum accumulation + output assembly.
    Merge = 6,
    /// Response fan-out back to the waiting handles.
    Respond = 7,
}

/// Number of stages in [`Stage`].
pub const STAGE_COUNT: usize = 8;

impl Stage {
    /// Every stage, lifecycle order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Submit,
        Stage::Queue,
        Stage::Admission,
        Stage::Write,
        Stage::Compute,
        Stage::Digitize,
        Stage::Merge,
        Stage::Respond,
    ];

    /// Stable lower-case label (metric/JSON key).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Submit => "submit",
            Stage::Queue => "queue",
            Stage::Admission => "admission",
            Stage::Write => "write",
            Stage::Compute => "compute",
            Stage::Digitize => "digitize",
            Stage::Merge => "merge",
            Stage::Respond => "respond",
        }
    }
}

/// One stage's cell: wall-clock histogram + modeled energy.
#[derive(Debug, Default)]
struct StageCell {
    hist: LatencyHistogram,
    energy_j: AtomicF64,
}

/// Per-stage latency histograms and modeled-energy accumulators.
#[derive(Debug, Default)]
pub struct StageStats {
    cells: [StageCell; STAGE_COUNT],
}

/// A plain copy of one stage's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// The stage.
    pub stage: Stage,
    /// Wall-clock samples of the stage.
    pub hist: HistogramSnapshot,
    /// Modeled energy attributed to the stage, J.
    pub energy_j: f64,
}

impl StageStats {
    /// A fresh all-zero table.
    #[must_use]
    pub fn new() -> Self {
        StageStats::default()
    }

    /// Records `nanos` of wall-clock time against `stage`. No-op under
    /// `obs-off`.
    #[inline]
    pub fn record_ns(&self, stage: Stage, nanos: u64) {
        if cfg!(feature = "obs-off") {
            return;
        }
        self.cells[stage as usize].hist.record(nanos);
    }

    /// Attributes `joules` of modeled energy to `stage`. No-op under
    /// `obs-off`.
    #[inline]
    pub fn add_energy_j(&self, stage: Stage, joules: f64) {
        if cfg!(feature = "obs-off") {
            return;
        }
        self.cells[stage as usize].energy_j.add(joules);
    }

    /// The stage's wall-clock histogram.
    #[must_use]
    pub fn hist(&self, stage: Stage) -> &LatencyHistogram {
        &self.cells[stage as usize].hist
    }

    /// The stage's accumulated modeled energy, J.
    #[must_use]
    pub fn energy_j(&self, stage: Stage) -> f64 {
        self.cells[stage as usize].energy_j.get()
    }

    /// Total modeled energy across all stages, J.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        Stage::ALL.iter().map(|&s| self.energy_j(s)).sum()
    }

    /// Plain copies of every stage, lifecycle order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<StageSnapshot> {
        Stage::ALL
            .iter()
            .map(|&stage| StageSnapshot {
                stage,
                hist: self.hist(stage).snapshot(),
                energy_j: self.energy_j(stage),
            })
            .collect()
    }
}

/// Whether instrumentation is compiled in (`false` under `obs-off`).
#[must_use]
pub const fn compiled() -> bool {
    !cfg!(feature = "obs-off")
}

#[cfg(not(feature = "obs-off"))]
mod ambient {
    use super::{Stage, StageStats};
    use std::cell::RefCell;
    use std::sync::Arc;
    use std::time::Instant;

    /// One open span on the thread's stack.
    struct Open {
        stage: Stage,
        started: Instant,
        child_ns: u64,
    }

    thread_local! {
        static COLLECTOR: RefCell<Option<Arc<StageStats>>> = const { RefCell::new(None) };
        static STACK: RefCell<Vec<Open>> = const { RefCell::new(Vec::new()) };
    }

    /// Installs (or clears) this thread's ambient collector.
    pub fn install_collector(stats: Option<Arc<StageStats>>) {
        COLLECTOR.with(|c| *c.borrow_mut() = stats);
    }

    /// Whether this thread currently has a collector installed.
    #[must_use]
    pub fn collector_installed() -> bool {
        COLLECTOR.with(|c| c.borrow().is_some())
    }

    /// Credits `ns` of self time for `stage` directly to this thread's
    /// collector — the lightweight alternative to a [`Span`] pair for
    /// straight-line phases the caller already timed with its own clock
    /// reads. The time also counts as child time of the innermost open
    /// span (if any), so enclosing spans' self-time attribution stays
    /// exact. A no-op on threads with no collector installed.
    pub fn record_stage_ns(stage: Stage, ns: u64) {
        COLLECTOR.with(|c| {
            if let Some(stats) = c.borrow().as_ref() {
                stats.record_ns(stage, ns);
            }
        });
        STACK.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                parent.child_ns += ns;
            }
        });
    }

    /// An RAII span recording self time into the thread's collector.
    #[derive(Debug)]
    #[must_use = "a span records on drop; binding it to _ drops it immediately"]
    pub struct Span {
        active: bool,
    }

    impl Span {
        /// Opens a span for `stage`; a no-op on threads with no
        /// installed collector.
        #[inline]
        pub fn enter(stage: Stage) -> Span {
            if !collector_installed() {
                return Span { active: false };
            }
            STACK.with(|s| {
                s.borrow_mut().push(Open {
                    stage,
                    started: Instant::now(),
                    child_ns: 0,
                })
            });
            Span { active: true }
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let open = stack.pop().expect("span stack underflow");
                let total = open.started.elapsed().as_nanos() as u64;
                let self_ns = total.saturating_sub(open.child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += total;
                }
                drop(stack);
                COLLECTOR.with(|c| {
                    if let Some(stats) = c.borrow().as_ref() {
                        stats.record_ns(open.stage, self_ns);
                    }
                });
            });
        }
    }
}

#[cfg(feature = "obs-off")]
mod ambient {
    use super::{Stage, StageStats};
    use std::sync::Arc;

    /// No-op under `obs-off`.
    #[inline]
    pub fn install_collector(_stats: Option<Arc<StageStats>>) {}

    /// Always `false` under `obs-off`.
    #[inline]
    #[must_use]
    pub fn collector_installed() -> bool {
        false
    }

    /// No-op under `obs-off`.
    #[inline]
    pub fn record_stage_ns(_stage: Stage, _ns: u64) {}

    /// Zero-sized no-op span under `obs-off`.
    #[derive(Debug)]
    #[must_use = "a span records on drop; binding it to _ drops it immediately"]
    pub struct Span;

    impl Span {
        /// No-op under `obs-off`.
        #[inline]
        pub fn enter(_stage: Stage) -> Span {
            Span
        }
    }
}

pub use ambient::{collector_installed, install_collector, record_stage_ns, Span};

/// An explicit RAII stage timer: records its wall-clock lifetime into
/// the given [`StageStats`] on drop. Unlike [`Span`] it needs no
/// thread-local installation and does not participate in the span
/// stack (no self-time subtraction) — use it where the stats table is
/// already in hand and stages do not nest.
#[derive(Debug)]
#[must_use = "a timer records on drop; binding it to _ drops it immediately"]
pub struct StageTimer<'a> {
    #[cfg(not(feature = "obs-off"))]
    stats: &'a StageStats,
    #[cfg(not(feature = "obs-off"))]
    stage: Stage,
    #[cfg(not(feature = "obs-off"))]
    started: std::time::Instant,
    #[cfg(feature = "obs-off")]
    _marker: std::marker::PhantomData<&'a StageStats>,
}

impl<'a> StageTimer<'a> {
    /// Starts timing `stage` against `stats`.
    #[inline]
    pub fn start(stats: &'a StageStats, stage: Stage) -> StageTimer<'a> {
        #[cfg(not(feature = "obs-off"))]
        {
            let _ = (&stats, stage);
            StageTimer {
                stats,
                stage,
                started: std::time::Instant::now(),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = (stats, stage);
            StageTimer {
                _marker: std::marker::PhantomData,
            }
        }
    }
}

#[cfg(not(feature = "obs-off"))]
impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.stats
            .record_ns(self.stage, self.started.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn stage_labels_are_stable_and_distinct() {
        let labels: Vec<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), STAGE_COUNT);
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), STAGE_COUNT, "labels must be distinct");
        assert_eq!(Stage::Write.label(), "write");
    }

    #[test]
    fn stage_stats_accumulate_time_and_energy() {
        let stats = StageStats::new();
        stats.record_ns(Stage::Write, 1_000);
        stats.record_ns(Stage::Write, 2_000);
        stats.add_energy_j(Stage::Write, 1e-12);
        stats.add_energy_j(Stage::Compute, 2e-12);
        if compiled() {
            assert_eq!(stats.hist(Stage::Write).count(), 2);
            assert!((stats.energy_j(Stage::Write) - 1e-12).abs() < 1e-24);
            assert!((stats.total_energy_j() - 3e-12).abs() < 1e-24);
            let snap = stats.snapshot();
            assert_eq!(snap.len(), STAGE_COUNT);
            assert_eq!(snap[Stage::Write as usize].hist.count(), 2);
        } else {
            assert_eq!(stats.hist(Stage::Write).count(), 0);
            assert_eq!(stats.total_energy_j(), 0.0);
        }
    }

    #[test]
    fn stage_timer_records_on_drop() {
        let stats = StageStats::new();
        {
            let _t = StageTimer::start(&stats, Stage::Admission);
            std::hint::black_box(());
        }
        if compiled() {
            assert_eq!(stats.hist(Stage::Admission).count(), 1);
        } else {
            assert_eq!(stats.hist(Stage::Admission).count(), 0);
        }
    }

    #[test]
    fn spans_need_an_installed_collector() {
        // No collector: spans are inert.
        install_collector(None);
        {
            let _span = Span::enter(Stage::Compute);
        }
        let stats = Arc::new(StageStats::new());
        install_collector(Some(Arc::clone(&stats)));
        {
            let _span = Span::enter(Stage::Compute);
        }
        install_collector(None);
        if compiled() {
            assert_eq!(stats.hist(Stage::Compute).count(), 1);
        } else {
            assert_eq!(stats.hist(Stage::Compute).count(), 0);
        }
    }

    #[test]
    fn nested_spans_record_self_time_not_total() {
        if !compiled() {
            return;
        }
        let stats = Arc::new(StageStats::new());
        install_collector(Some(Arc::clone(&stats)));
        {
            let _outer = Span::enter(Stage::Merge);
            {
                let _inner = Span::enter(Stage::Digitize);
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            // Outer tail does almost nothing.
        }
        install_collector(None);
        let digitize = stats.hist(Stage::Digitize).mean_s();
        let merge = stats.hist(Stage::Merge).mean_s();
        assert!(digitize >= 0.015, "inner span sees the sleep: {digitize}");
        assert!(
            merge < digitize / 2.0,
            "outer span must subtract the child's {digitize}s, recorded {merge}s"
        );
    }

    #[test]
    fn collector_is_per_thread() {
        if !compiled() {
            return;
        }
        let stats = Arc::new(StageStats::new());
        install_collector(Some(Arc::clone(&stats)));
        let handle = std::thread::spawn(|| {
            // Fresh thread: no collector installed here.
            assert!(!collector_installed());
            let _span = Span::enter(Stage::Compute);
        });
        handle.join().expect("thread finishes");
        install_collector(None);
        assert_eq!(stats.hist(Stage::Compute).count(), 0);
    }
}
