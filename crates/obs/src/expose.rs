//! Exposition: a unified snapshot [`Frame`] rendered as Prometheus
//! text or JSON.
//!
//! `pic-obs` has zero dependencies (no serde), so both renderers are
//! hand-rolled. The JSON renderer emits a stable, schema'd document;
//! the Prometheus renderer follows the text exposition format
//! (`# TYPE` lines, cumulative `le` buckets for histograms) so the
//! output can be scraped or pushed without an HTTP endpoint — write it
//! to a file or pipe it wherever a scraper can read it.
//!
//! A [`Frame`] is cumulative; [`Frame::delta`] subtracts an earlier
//! frame to produce a windowed view for rate computation. Gauges are
//! instantaneous and pass through a delta unchanged.

use std::collections::HashSet;

use crate::hist::HistogramSnapshot;
use crate::span::StageSnapshot;

/// Escapes a string for use as a Prometheus label *value*: `\` → `\\`,
/// `"` → `\"`, newline → `\n`. Use this whenever an external id (model
/// name, client id) is interpolated into `name{label="<value>"}` —
/// a raw `"` would otherwise break the exposition line.
#[must_use]
pub fn prom_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One stage row in a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct StageFrame {
    /// Stable stage label (`"write"`, `"compute"`, ...).
    pub stage: &'static str,
    /// Wall-clock samples of the stage (self time).
    pub hist: HistogramSnapshot,
    /// Modeled energy attributed to the stage, J.
    pub energy_j: f64,
}

impl From<StageSnapshot> for StageFrame {
    fn from(s: StageSnapshot) -> StageFrame {
        StageFrame {
            stage: s.stage.label(),
            hist: s.hist,
            energy_j: s.energy_j,
        }
    }
}

/// A unified, renderable snapshot of counters, gauges, stage
/// statistics, and named histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frame {
    /// Seconds since some fixed origin (typically registry creation).
    pub at_s: f64,
    /// Monotone cumulative counters, `(name, value)`.
    pub counters: Vec<(&'static str, u64)>,
    /// Instantaneous gauges, `(name, value)`. Names are owned so
    /// per-instance gauges (e.g. per-device residency) can be emitted.
    pub gauges: Vec<(String, f64)>,
    /// Per-stage latency/energy rows, lifecycle order.
    pub stages: Vec<StageFrame>,
    /// Additional named histograms (e.g. end-to-end latency).
    pub hists: Vec<(&'static str, HistogramSnapshot)>,
}

impl Frame {
    /// The windowed difference `self - earlier`: counters and
    /// histogram buckets subtract (saturating), stage energy
    /// subtracts, gauges and `at_s` keep `self`'s instantaneous
    /// values. Entries are matched by name; names present only in
    /// `self` pass through unchanged.
    #[must_use]
    pub fn delta(&self, earlier: &Frame) -> Frame {
        let counter = |name: &str| earlier.counters.iter().find(|(n, _)| *n == name);
        let stage = |name: &str| earlier.stages.iter().find(|s| s.stage == name);
        let hist = |name: &str| earlier.hists.iter().find(|(n, _)| *n == name);
        Frame {
            at_s: self.at_s,
            counters: self
                .counters
                .iter()
                .map(|&(n, v)| (n, v.saturating_sub(counter(n).map_or(0, |&(_, e)| e))))
                .collect(),
            gauges: self.gauges.clone(),
            stages: self
                .stages
                .iter()
                .map(|s| match stage(s.stage) {
                    Some(e) => StageFrame {
                        stage: s.stage,
                        hist: s.hist.delta(&e.hist),
                        energy_j: (s.energy_j - e.energy_j).max(0.0),
                    },
                    None => s.clone(),
                })
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| match hist(n) {
                    Some((_, e)) => (*n, h.delta(e)),
                    None => (*n, h.clone()),
                })
                .collect(),
        }
    }

    /// Renders the frame in the Prometheus text exposition format.
    /// Metric names are `{prefix}_{name}`; histograms emit cumulative
    /// `le` buckets in seconds plus `_sum`/`_count`. A name may embed
    /// a `{label="value"}` suffix (escape values with
    /// [`prom_label_value`]); the `# TYPE` line then uses the bare
    /// metric name and is emitted once per family, not per series.
    #[must_use]
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::with_capacity(4096);
        let mut typed = HashSet::new();
        for &(name, value) in &self.counters {
            prom_scalar(&mut out, &mut typed, prefix, name, "counter", value as f64);
        }
        for (name, value) in &self.gauges {
            prom_scalar(&mut out, &mut typed, prefix, name, "gauge", *value);
        }
        for stage in &self.stages {
            let name = format!("stage_{}_seconds", stage.stage);
            prom_hist(&mut out, prefix, &name, &stage.hist);
            prom_scalar(
                &mut out,
                &mut typed,
                prefix,
                &format!("stage_{}_energy_joules", stage.stage),
                "counter",
                stage.energy_j,
            );
        }
        for (name, hist) in &self.hists {
            prom_hist(&mut out, prefix, &format!("{name}_seconds"), hist);
        }
        out
    }

    /// Renders the frame as a JSON object:
    /// `{"at_s", "counters": {..}, "gauges": {..}, "stages": [..],
    /// "hists": {..}}`. Stage/histogram objects carry `count`,
    /// `mean_s`, `p50_s`, `p99_s`, `p999_s`, `max_s` (and stage rows
    /// `energy_j`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        push_key(&mut out, "at_s");
        push_f64(&mut out, self.at_s);
        out.push(',');
        push_key(&mut out, "counters");
        out.push('{');
        for (i, &(name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push_str(&value.to_string());
        }
        out.push_str("},");
        push_key(&mut out, "gauges");
        out.push('{');
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            push_f64(&mut out, *value);
        }
        out.push_str("},");
        push_key(&mut out, "stages");
        out.push('[');
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_key(&mut out, "stage");
            push_json_str(&mut out, stage.stage);
            out.push(',');
            json_hist_fields(&mut out, &stage.hist);
            out.push(',');
            push_key(&mut out, "energy_j");
            push_f64(&mut out, stage.energy_j);
            out.push('}');
        }
        out.push_str("],");
        push_key(&mut out, "hists");
        out.push('{');
        for (i, (name, hist)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, name);
            out.push('{');
            json_hist_fields(&mut out, hist);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

fn prom_scalar(
    out: &mut String,
    typed: &mut HashSet<String>,
    prefix: &str,
    name: &str,
    kind: &str,
    value: f64,
) {
    // Series of one family share a bare metric name up to the label
    // block; the TYPE header belongs to the family, once.
    let family = name.split('{').next().unwrap_or(name);
    if typed.insert(family.to_string()) {
        out.push_str(&format!("# TYPE {prefix}_{family} {kind}\n"));
    }
    out.push_str(&format!("{prefix}_{name} {}\n", fmt_f64(value)));
}

fn prom_hist(out: &mut String, prefix: &str, name: &str, hist: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {prefix}_{name} histogram\n"));
    let mut cumulative = 0u64;
    for (i, &count) in hist.buckets.iter().enumerate() {
        if count == 0 {
            continue; // sparse: log2 rings have ~60 empty buckets
        }
        cumulative += count;
        let le = 2f64.powi(i as i32 + 1) / 1e9;
        out.push_str(&format!(
            "{prefix}_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            fmt_f64(le)
        ));
    }
    out.push_str(&format!(
        "{prefix}_{name}_bucket{{le=\"+Inf\"}} {}\n",
        hist.count()
    ));
    out.push_str(&format!(
        "{prefix}_{name}_sum {}\n",
        fmt_f64(hist.sum_ns as f64 / 1e9)
    ));
    out.push_str(&format!("{prefix}_{name}_count {}\n", hist.count()));
}

fn json_hist_fields(out: &mut String, hist: &HistogramSnapshot) {
    push_key(out, "count");
    out.push_str(&hist.count().to_string());
    for (key, q) in [("p50_s", 0.50), ("p99_s", 0.99), ("p999_s", 0.999)] {
        out.push(',');
        push_key(out, key);
        push_f64(out, hist.quantile_s(q));
    }
    out.push(',');
    push_key(out, "mean_s");
    push_f64(out, hist.mean_s());
    out.push(',');
    push_key(out, "max_s");
    push_f64(out, hist.max_s());
}

fn push_key(out: &mut String, key: &str) {
    push_json_str(out, key);
    out.push(':');
}

/// Appends `s` as a quoted, escaped JSON string (shared by the trace
/// and series renderers — `pic-obs` has no serde).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    out.push_str(&fmt_f64(v));
}

/// Finite floats via `{:?}` (shortest round-trip repr, always has a
/// decimal point or exponent so JSON parsers keep it a float);
/// non-finite map to 0 (JSON has no NaN/Inf).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;
    use crate::span::{Stage, StageStats};

    fn sample_frame() -> Frame {
        let stats = StageStats::new();
        stats.record_ns(Stage::Write, 1_000);
        stats.record_ns(Stage::Write, 3_000);
        stats.add_energy_j(Stage::Write, 2.5e-12);
        let e2e = LatencyHistogram::new();
        e2e.record(10_000);
        Frame {
            at_s: 1.25,
            counters: vec![("requests_completed", 42), ("tile_writes", 7)],
            gauges: vec![
                ("pending_depth".to_owned(), 3.0),
                ("worker_busy_fraction".to_owned(), 0.5),
            ],
            stages: stats.snapshot().into_iter().map(StageFrame::from).collect(),
            hists: vec![("latency", e2e.snapshot())],
        }
    }

    #[test]
    fn prometheus_output_has_types_buckets_and_values() {
        let text = sample_frame().to_prometheus("pic");
        assert!(text.contains("# TYPE pic_requests_completed counter"));
        assert!(text.contains("pic_requests_completed 42"));
        assert!(text.contains("# TYPE pic_pending_depth gauge"));
        assert!(text.contains("# TYPE pic_stage_write_seconds histogram"));
        assert!(text.contains("pic_stage_write_energy_joules"));
        assert!(text.contains("pic_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("pic_latency_seconds_count 1"));
        if crate::span::compiled() {
            assert!(text.contains("pic_stage_write_seconds_count 2"));
        }
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let h = LatencyHistogram::new();
        h.record(1_000); // bucket 9
        h.record(1_000);
        h.record(100_000); // bucket 16
        let frame = Frame {
            hists: vec![("t", h.snapshot())],
            ..Frame::default()
        };
        let text = frame.to_prometheus("x");
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("x_t_seconds_bucket"))
            .collect();
        assert_eq!(lines.len(), 3); // two non-empty buckets + +Inf
        assert!(lines[0].ends_with(" 2"), "{lines:?}");
        assert!(lines[1].ends_with(" 3"), "{lines:?}");
        assert!(lines[2].ends_with(" 3"), "{lines:?}");
    }

    #[test]
    fn json_output_is_parseable_shape() {
        let json = sample_frame().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":{\"requests_completed\":42"));
        assert!(json.contains("\"gauges\":{\"pending_depth\":3.0"));
        assert!(json.contains("\"stages\":[{\"stage\":\"submit\""));
        assert!(json.contains("\"hists\":{\"latency\":{\"count\":1"));
        assert!(!json.contains("NaN"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_reserved_characters() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn label_values_escape_and_type_lines_dedupe() {
        assert_eq!(prom_label_value("plain-id_9"), "plain-id_9");
        assert_eq!(prom_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let frame = Frame {
            gauges: vec![
                (
                    format!("model_requests{{model=\"{}\"}}", prom_label_value("m\"1")),
                    4.0,
                ),
                ("model_requests{model=\"m2\"}".to_owned(), 6.0),
            ],
            ..Frame::default()
        };
        let text = frame.to_prometheus("pic");
        // One TYPE header for the family, bare name, then both series.
        assert_eq!(
            text.matches("# TYPE pic_model_requests gauge\n").count(),
            1,
            "{text}"
        );
        assert!(!text.contains("# TYPE pic_model_requests{"), "{text}");
        assert!(text.contains("pic_model_requests{model=\"m\\\"1\"} 4.0"));
        assert!(text.contains("pic_model_requests{model=\"m2\"} 6.0"));
    }

    #[test]
    fn delta_subtracts_counters_and_buckets_but_not_gauges() {
        let earlier = sample_frame();
        let mut later = earlier.clone();
        later.at_s = 2.25;
        later.counters[0].1 = 52;
        later.gauges[0].1 = 9.0;
        let d = later.delta(&earlier);
        assert_eq!(d.at_s, 2.25);
        assert_eq!(d.counters[0], ("requests_completed", 10));
        assert_eq!(d.counters[1], ("tile_writes", 0));
        assert_eq!(d.gauges[0], ("pending_depth".to_owned(), 9.0));
        assert!(d.stages.iter().all(|s| s.hist.count() == 0));
        assert_eq!(d.hists[0].1.count(), 0);
        // A name missing from the earlier frame passes through.
        let fresh = later.delta(&Frame::default());
        assert_eq!(fresh.counters[0], ("requests_completed", 52));
    }
}
