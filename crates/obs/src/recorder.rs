//! Lock-free ring-buffer flight recorder for post-mortem debugging.
//!
//! Keeps the last `capacity` structured events (admission reorders,
//! residency hits/misses, deadline expiries, queue-full rejections,
//! worker stalls) in a fixed ring of seqlock-published slots. Writers
//! never block and never allocate: a writer claims a global sequence
//! number, marks the slot odd (in flight), stores the payload, then
//! publishes it even. Readers ([`FlightRecorder::dump`]) skip slots
//! caught mid-write and slots overwritten during the read, so a dump
//! is always a consistent (if slightly lossy under heavy write
//! pressure) view of the recent past.
//!
//! An *incident* latch ([`FlightRecorder::trip_incident`]) lets the
//! first observer of a failure (e.g. the first deadline miss) win a
//! compare-and-swap and dump the ring exactly once, capturing the
//! events that led up to it.
//!
//! Under `obs-off`, [`FlightRecorder::record`] compiles to a no-op.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// What happened. Payload meaning of `a`/`b` is per-kind (see variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum EventKind {
    /// Admission policy picked a non-head queue: `a` = chosen matrix
    /// id, `b` = requests in the formed batch.
    AdmissionReorder = 1,
    /// Batch found its weights resident: `a` = matrix id, `b` = device id.
    ResidencyHit = 2,
    /// Batch had to stream weights in: `a` = matrix id, `b` = device id.
    ResidencyMiss = 3,
    /// Request expired before compute: `a` = matrix id, `b` = lateness
    /// in nanoseconds past the deadline.
    DeadlineExpired = 4,
    /// Intake queue was full at submit: `a` = matrix id, `b` = 0.
    QueueFullRejected = 5,
    /// A worker waited idle for work: `a` = worker id, `b` = stall
    /// duration in nanoseconds.
    WorkerStall = 6,
    /// The network front-end shed a request under weighted fair
    /// admission: `a` = client id hash, `b` = the client's in-flight
    /// count at the shed.
    ClientShed = 7,
    /// The network front-end rejected a connection at the acceptor
    /// (connection cap reached): `a` = live connections, `b` = 0.
    ConnOverload = 8,
    /// A cluster node was marked lost: `a` = node id, `b` = shards it
    /// was the last live replica of (re-placed on survivors).
    NodeLost = 9,
    /// A shard was re-placed after a node loss: `a` = parent matrix
    /// id, `b` = the surviving node it now lives on.
    Reshard = 10,
    /// An in-flight shard call on a lost node was retried against the
    /// new placement: `a` = parent matrix id, `b` = the node retried
    /// against.
    ShardRetry = 11,
    /// A served request exceeded the front-end's slow-request
    /// threshold (an exemplar for trace capture): `a` = matrix id,
    /// `b` = end-to-end latency in nanoseconds.
    SlowRequest = 12,
}

impl EventKind {
    /// Stable lower-snake label used in dumps.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::AdmissionReorder => "admission_reorder",
            EventKind::ResidencyHit => "residency_hit",
            EventKind::ResidencyMiss => "residency_miss",
            EventKind::DeadlineExpired => "deadline_expired",
            EventKind::QueueFullRejected => "queue_full_rejected",
            EventKind::WorkerStall => "worker_stall",
            EventKind::ClientShed => "client_shed",
            EventKind::ConnOverload => "conn_overload",
            EventKind::NodeLost => "node_lost",
            EventKind::Reshard => "reshard",
            EventKind::ShardRetry => "shard_retry",
            EventKind::SlowRequest => "slow_request",
        }
    }

    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::AdmissionReorder,
            2 => EventKind::ResidencyHit,
            3 => EventKind::ResidencyMiss,
            4 => EventKind::DeadlineExpired,
            5 => EventKind::QueueFullRejected,
            6 => EventKind::WorkerStall,
            7 => EventKind::ClientShed,
            8 => EventKind::ConnOverload,
            9 => EventKind::NodeLost,
            10 => EventKind::Reshard,
            11 => EventKind::ShardRetry,
            12 => EventKind::SlowRequest,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (total events recorded before this one).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (per-kind meaning, see [`EventKind`]).
    pub a: u64,
    /// Second payload word (per-kind meaning, see [`EventKind`]).
    pub b: u64,
}

/// One ring slot. `state` encodes publication: `0` = never written,
/// odd = write in flight for seq `(state-1)/2`, even = published seq
/// `state/2 - 1`.
#[derive(Debug)]
struct Slot {
    state: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity lock-free ring of recent [`Event`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    incident: AtomicBool,
    origin: Instant,
}

/// Default ring capacity: enough for several seconds of serving events
/// at demo rates while staying a few tens of KiB.
pub const DEFAULT_RECORDER_CAPACITY: usize = 1024;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (rounded up to 1).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            incident: AtomicBool::new(false),
            origin: Instant::now(),
        }
    }

    /// Ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including ones already overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        if cfg!(feature = "obs-off") {
            return 0;
        }
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events no longer retrievable from a dump: everything recorded
    /// beyond the ring's last `capacity` events has been overwritten.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records an event. Lock-free, allocation-free; no-op under
    /// `obs-off`.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        if cfg!(feature = "obs-off") {
            return;
        }
        let t_ns = self.origin.elapsed().as_nanos() as u64;
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Mark in flight (odd), publish payload, then mark published
        // (even). A reader that observes the odd state, or a state that
        // changed across its field reads, discards the slot.
        slot.state.store(seq * 2 + 1, Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.state.store((seq + 1) * 2, Ordering::Release);
    }

    /// Latches the incident flag; `true` exactly once, for the first
    /// caller. Lets "dump on first deadline miss" fire a single time.
    pub fn trip_incident(&self) -> bool {
        !self.incident.swap(true, Ordering::AcqRel)
    }

    /// Whether the incident latch has fired.
    #[must_use]
    pub fn incident_tripped(&self) -> bool {
        self.incident.load(Ordering::Acquire)
    }

    /// A consistent copy of the ring's published events, oldest first.
    /// Slots caught mid-write or overwritten during the read are
    /// skipped.
    #[must_use]
    pub fn dump(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.state.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // never written, or write in flight
            }
            let event = Event {
                seq: before / 2 - 1,
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                kind: match EventKind::from_code(slot.kind.load(Ordering::Relaxed)) {
                    Some(kind) => kind,
                    None => continue,
                },
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            if slot.state.load(Ordering::Acquire) != before {
                continue; // overwritten while we were reading
            }
            events.push(event);
        }
        events.sort_unstable_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled() -> bool {
        !cfg!(feature = "obs-off")
    }

    #[test]
    fn records_and_dumps_in_sequence_order() {
        let rec = FlightRecorder::new(8);
        rec.record(EventKind::ResidencyMiss, 7, 0);
        rec.record(EventKind::ResidencyHit, 7, 0);
        rec.record(EventKind::AdmissionReorder, 3, 4);
        if !compiled() {
            assert!(rec.dump().is_empty());
            return;
        }
        let events = rec.dump();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::ResidencyMiss);
        assert_eq!(events[2].kind, EventKind::AdmissionReorder);
        assert_eq!(events[2].a, 3);
        assert_eq!(events[2].b, 4);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(EventKind::WorkerStall, i, 0);
        }
        if !compiled() {
            return;
        }
        let events = rec.dump();
        assert_eq!(events.len(), 4);
        let ids: Vec<u64> = events.iter().map(|e| e.a).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn incident_latch_fires_exactly_once_across_threads() {
        let rec = FlightRecorder::new(4);
        assert!(!rec.incident_tripped());
        let winners: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| usize::from(rec.trip_incident())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(winners, 1);
        assert!(rec.incident_tripped());
        assert!(!rec.trip_incident());
    }

    #[test]
    fn concurrent_writers_never_corrupt_a_dump() {
        if !compiled() {
            return;
        }
        let rec = FlightRecorder::new(64);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        // Payload invariant: b == a + 1, checked below.
                        rec.record(EventKind::ResidencyHit, w * 10_000 + i, w * 10_000 + i + 1);
                    }
                });
            }
            let rec = &rec;
            scope.spawn(move || {
                for _ in 0..200 {
                    for e in rec.dump() {
                        assert_eq!(e.b, e.a + 1, "torn slot read: {e:?}");
                        assert_eq!(e.kind, EventKind::ResidencyHit);
                    }
                }
            });
        });
        assert_eq!(rec.recorded(), 20_000);
    }

    #[test]
    fn torture_one_writer_four_readers_over_a_million_events() {
        // Satellite stress: one writer streams 1M events through a
        // small ring while four seqlock readers dump continuously.
        // Every surfaced event must honour the payload invariant
        // (no torn reads) and every dump must be strictly monotone in
        // seq with consistent timestamps.
        if !compiled() {
            return;
        }
        const EVENTS: u64 = 1_000_000;
        const MASK: u64 = 0xA5A5_5A5A_DEAD_BEEF;
        let rec = FlightRecorder::new(1024);
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let rec = &rec;
            let done = &done;
            scope.spawn(move || {
                for i in 0..EVENTS {
                    rec.record(EventKind::WorkerStall, i, i ^ MASK);
                }
                done.store(true, Ordering::Release);
            });
            for _ in 0..4 {
                scope.spawn(move || {
                    let mut dumps = 0u64;
                    while !done.load(Ordering::Acquire) || dumps == 0 {
                        let events = rec.dump();
                        for e in &events {
                            assert_eq!(e.b, e.a ^ MASK, "torn slot read: {e:?}");
                            assert_eq!(e.seq, e.a, "seq/payload mismatch: {e:?}");
                        }
                        assert!(
                            events.windows(2).all(|w| w[0].seq < w[1].seq),
                            "dump not strictly monotone in seq"
                        );
                        assert!(
                            events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
                            "timestamps regressed within a dump"
                        );
                        dumps += 1;
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), EVENTS);
        assert_eq!(rec.dropped(), EVENTS - 1024);
        let final_dump = rec.dump();
        assert!(!final_dump.is_empty());
        assert!(final_dump.iter().all(|e| e.seq >= EVENTS - 1024));
    }

    #[test]
    fn dropped_counts_only_overwritten_events() {
        let rec = FlightRecorder::new(4);
        for i in 0..3u64 {
            rec.record(EventKind::WorkerStall, i, 0);
        }
        assert_eq!(rec.dropped(), 0);
        for i in 0..7u64 {
            rec.record(EventKind::WorkerStall, i, 0);
        }
        if compiled() {
            assert_eq!(rec.recorded(), 10);
            assert_eq!(rec.dropped(), 6);
        } else {
            assert_eq!(rec.dropped(), 0);
        }
    }

    #[test]
    fn event_kind_labels_round_trip() {
        for code in 1..=12u64 {
            let kind = EventKind::from_code(code).expect("valid code");
            assert_eq!(kind as u64, code);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(99), None);
    }
}
