//! Property-based tests on the photonic device models.

use pic_photonics::{coupler, FrequencyComb, Mrr, OperatingPoint, PowerSplitter};
use pic_units::{OpticalPower, Ratio, Voltage, Wavelength};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any buildable ring is passive at any wavelength/operating point.
    #[test]
    fn arbitrary_rings_are_passive(
        radius_um in 3.0f64..20.0,
        t in 0.8f64..0.999,
        a in 0.95f64..1.0,
        wl_nm in 1300.0f64..1320.0,
        v in -3.0f64..3.0,
        dt_k in -20.0f64..20.0,
    ) {
        let ring = Mrr::builder()
            .radius_um(radius_um)
            .self_coupling(t, t)
            .round_trip(a)
            .resonant_at(Wavelength::from_nanometers(1310.0), Voltage::ZERO)
            .build();
        let op = OperatingPoint::new(Voltage::from_volts(v), dt_k);
        let wl = Wavelength::from_nanometers(wl_nm);
        let thru = ring.thru_transmission(wl, op);
        let drop = ring.drop_transmission(wl, op);
        prop_assert!((0.0..=1.0).contains(&thru));
        prop_assert!((0.0..=1.0).contains(&drop));
        prop_assert!(thru + drop <= 1.0 + 1e-9);
    }

    /// The bisection resonance finder agrees with the analytic FSR: two
    /// adjacent resonances are one FSR apart.
    #[test]
    fn resonance_spacing_matches_fsr(
        radius_um in 5.0f64..15.0,
    ) {
        let ring = Mrr::builder()
            .radius_um(radius_um)
            .resonant_at(Wavelength::from_nanometers(1310.0), Voltage::ZERO)
            .build();
        let rs = ring.resonances_in(
            Wavelength::from_nanometers(1295.0),
            Wavelength::from_nanometers(1325.0),
            OperatingPoint::unbiased(),
        );
        prop_assert!(rs.len() >= 2);
        let spacing = rs[1].as_nanometers() - rs[0].as_nanometers();
        let fsr = ring.fsr_near(rs[0]).as_nanometers();
        prop_assert!((spacing - fsr).abs() / fsr < 0.05, "spacing {spacing} vs FSR {fsr}");
    }

    /// Calibration invariant: `resonant_at` always puts a deep notch at
    /// the requested wavelength/voltage.
    #[test]
    fn resonant_at_is_honoured(
        wl_nm in 1305.0f64..1315.0,
        v in 0.0f64..1.0,
        dl in 0.0f64..200.0,
    ) {
        let wl = Wavelength::from_nanometers(wl_nm);
        let bias = Voltage::from_volts(v);
        let ring = Mrr::compute_ring_design()
            .resonant_at(wl, bias)
            .length_adjust_nm(0.0)
            .build();
        prop_assert!(ring.thru_transmission(wl, OperatingPoint::at_voltage(bias)) < 0.02);
        // Length adjustment moves the notch away again.
        if dl > 30.0 {
            let moved = Mrr::compute_ring_design()
                .resonant_at(wl, bias)
                .length_adjust_nm(dl)
                .build();
            prop_assert!(
                moved.thru_transmission(wl, OperatingPoint::at_voltage(bias)) > 0.2
            );
        }
    }

    /// Splitters conserve power for any tap fraction and loss.
    #[test]
    fn splitters_conserve_power(tap in 0.0f64..1.0, loss_db in 0.0f64..3.0) {
        let ps = PowerSplitter::new(tap, Ratio::from_db(-loss_db));
        let (a, b) = ps.split(OpticalPower::from_milliwatts(1.0));
        let total = a.as_milliwatts() + b.as_milliwatts();
        prop_assert!(total <= 1.0 + 1e-12);
        let expected = 10f64.powf(-loss_db / 10.0);
        prop_assert!((total - expected).abs() < 1e-9);
    }

    /// Comb encoding is linear: scaling every input scales every channel.
    #[test]
    fn comb_encoding_is_linear(
        values in proptest::collection::vec(0.0f64..0.5, 4),
    ) {
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let single = comb.encode(&values);
        let doubled: Vec<f64> = values.iter().map(|v| 2.0 * v).collect();
        let double = comb.encode(&doubled);
        for ch in 0..4 {
            let ratio = double.power(ch).as_watts() / single.power(ch).as_watts().max(1e-30);
            if single.power(ch).as_watts() > 1e-15 {
                prop_assert!((ratio - 2.0).abs() < 1e-9);
            }
        }
    }

    /// Coupler gap ↔ coupling inversion round-trips across the design
    /// range.
    #[test]
    fn coupler_round_trip(gap in 100.0f64..450.0) {
        let t = coupler::self_coupling(gap);
        prop_assert!((0.0..1.0).contains(&t));
        let back = coupler::gap_for_self_coupling(t);
        prop_assert!((back - gap).abs() < 1e-6);
    }
}
