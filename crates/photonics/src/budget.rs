//! Optical link budgets: source-to-detector power accounting.
//!
//! The performance model assumes each comb line arrives at every row's
//! macros with enough power to compute (§IV-D's 10 mW/line budget). This
//! module makes that assumption auditable: a [`LinkBudget`] chains named
//! loss stages from the laser to a detector, and
//! [`tensor_core_row_budget`] builds the paper core's distribution path —
//! 1:N row split, routing waveguides, splitter excess and the multiplier
//! ring's insertion loss.

use pic_units::OpticalPower;

/// A chain of named loss stages.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkBudget {
    stages: Vec<(String, f64)>,
}

impl LinkBudget {
    /// Creates an empty (lossless) budget.
    #[must_use]
    pub fn new() -> Self {
        LinkBudget { stages: Vec::new() }
    }

    /// Appends a stage with `loss_db ≥ 0` of power loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss_db` is negative (budgets cannot contain gain).
    #[must_use]
    pub fn with_stage(mut self, name: &str, loss_db: f64) -> Self {
        assert!(loss_db >= 0.0, "stage '{name}' would add gain");
        self.stages.push((name.to_owned(), loss_db));
        self
    }

    /// Appends an ideal 1:n power split (`10·log₁₀ n` dB).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_split(self, name: &str, n: usize) -> Self {
        assert!(n > 0, "cannot split {name} zero ways");
        let loss = 10.0 * (n as f64).log10();
        self.with_stage(name, loss)
    }

    /// The named stages and their losses, in order.
    #[must_use]
    pub fn stages(&self) -> &[(String, f64)] {
        &self.stages
    }

    /// Total end-to-end loss, dB.
    #[must_use]
    pub fn total_loss_db(&self) -> f64 {
        self.stages.iter().map(|(_, l)| l).sum()
    }

    /// Power delivered to the far end for a given launch power.
    #[must_use]
    pub fn deliver(&self, launch: OpticalPower) -> OpticalPower {
        launch.attenuate(pic_units::Ratio::from_db(-self.total_loss_db()))
    }
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget::new()
    }
}

/// The paper core's comb-line-to-row-detector budget: one comb line,
/// split across `rows` rows, routed ~`routing_cm` of waveguide, through a
/// 1:2 distribution splitter's excess loss, the binary ladder's MSB tap
/// (the *best-case* branch; deeper taps are accounted in the ladder
/// fractions, not as loss), and one off-resonance multiplier ring.
#[must_use]
pub fn tensor_core_row_budget(rows: usize, routing_cm: f64) -> LinkBudget {
    LinkBudget::new()
        .with_split("row distribution", rows)
        .with_stage(
            "routing waveguide",
            crate::calib::WAVEGUIDE_LOSS_DB_PER_CM * routing_cm,
        )
        .with_stage("splitter excess", 0.3)
        .with_stage("multiplier ring insertion", 0.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseModel;
    use pic_units::Current;

    #[test]
    fn split_loss_is_logarithmic() {
        let b = LinkBudget::new().with_split("x", 16);
        assert!((b.total_loss_db() - 12.041).abs() < 1e-3);
    }

    #[test]
    fn stages_compose_additively() {
        let b = LinkBudget::new()
            .with_stage("a", 1.0)
            .with_stage("b", 2.0)
            .with_split("c", 2);
        assert!((b.total_loss_db() - (3.0 + 3.0103)).abs() < 1e-3);
        assert_eq!(b.stages().len(), 3);
    }

    #[test]
    fn paper_budget_delivers_sub_milliwatt_per_row() {
        // 10 mW comb line across 16 rows with realistic losses lands in
        // the 0.4–0.6 mW class at each row's macro — the right order for
        // the 1 mW-class per-line assumption of the compute model.
        let b = tensor_core_row_budget(16, 0.5);
        let delivered = b.deliver(OpticalPower::from_milliwatts(10.0));
        let mw = delivered.as_milliwatts();
        assert!(mw > 0.3 && mw < 0.7, "delivered {mw} mW");
    }

    #[test]
    fn delivered_power_clears_the_noise_floor() {
        // Close the loop with the noise model: the delivered per-row power
        // must support more resolvable levels than the 3-bit ADC needs.
        let b = tensor_core_row_budget(16, 0.5);
        let delivered = b.deliver(OpticalPower::from_milliwatts(10.0));
        let full_scale = Current::from_amps(
            delivered.as_watts() * 4.0 * crate::calib::PHOTODIODE_RESPONSIVITY_A_PER_W,
        );
        let levels = NoiseModel::paper_receiver().resolvable_levels(full_scale);
        assert!(
            levels > 8.0,
            "only {levels} resolvable levels after the link"
        );
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn budgets_reject_gain() {
        let _ = LinkBudget::new().with_stage("amp", -3.0);
    }
}
