//! Phase-change-material (PCM) photonic weight cell.
//!
//! The paper's §I second comparison class: PCM patches on waveguides
//! "offer scalability by controlling transmittance as a weight; however,
//! they demand high write latency and energy" (refs [28], [30], [31],
//! [36]). This model captures a multi-level GST-on-waveguide cell: the
//! crystalline fraction sets transmittance; programming takes a train of
//! energy-hungry melt/recrystallise pulses with bounded endurance.

use pic_units::{Energy, OpticalPower, Seconds};

/// A multi-level PCM weight cell.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PcmCell {
    /// Crystalline fraction in `[0, 1]` (1 = fully crystalline = most
    /// absorbing for GST-on-Si).
    state: f64,
    levels: u32,
    transmission_amorphous: f64,
    transmission_crystalline: f64,
    write_pulse: Seconds,
    write_energy_per_pulse: Energy,
    writes_done: u64,
    endurance: u64,
}

impl PcmCell {
    /// A GST-class cell: 5-bit multi-level, T from 0.95 (amorphous) down
    /// to 0.30 (crystalline), 100 ns programming pulses at ~0.4 nJ
    /// (Ríos et al. / Feldmann et al. device class), 10⁸ write endurance.
    #[must_use]
    pub fn gst_on_waveguide() -> Self {
        PcmCell {
            state: 0.0,
            levels: 32,
            transmission_amorphous: 0.95,
            transmission_crystalline: 0.30,
            write_pulse: Seconds::from_nanoseconds(100.0),
            write_energy_per_pulse: Energy::from_picojoules(400.0),
            writes_done: 0,
            endurance: 100_000_000,
        }
    }

    /// Present crystalline fraction.
    #[must_use]
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Number of programmable levels.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Power transmission at the present state (linear interpolation
    /// between the amorphous and crystalline extremes).
    #[must_use]
    pub fn transmission(&self) -> f64 {
        self.transmission_amorphous
            + (self.transmission_crystalline - self.transmission_amorphous) * self.state
    }

    /// Output power for `input` at the present state.
    #[must_use]
    pub fn weight(&self, input: OpticalPower) -> OpticalPower {
        input * self.transmission()
    }

    /// Programs the cell to level `level` (0 = amorphous). Returns the
    /// `(time, energy)` cost: one pulse per level stepped through, the
    /// incremental-recrystallisation programming scheme.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds the level count or endurance is
    /// exhausted.
    pub fn program(&mut self, level: u32) -> (Seconds, Energy) {
        assert!(level < self.levels, "level {level} out of range");
        let target = f64::from(level) / f64::from(self.levels - 1);
        let steps = ((target - self.state).abs() * f64::from(self.levels - 1)).round() as u64;
        if steps == 0 {
            return (Seconds::ZERO, Energy::ZERO);
        }
        self.writes_done += steps;
        assert!(
            self.writes_done <= self.endurance,
            "PCM endurance exhausted after {} writes",
            self.writes_done
        );
        self.state = target;
        (
            Seconds::from_seconds(self.write_pulse.as_seconds() * steps as f64),
            self.write_energy_per_pulse * steps as f64,
        )
    }

    /// Writes consumed so far against the endurance budget.
    #[must_use]
    pub fn wear(&self) -> f64 {
        self.writes_done as f64 / self.endurance as f64
    }

    /// Worst-case reprogram time (full amorphous↔crystalline excursion).
    #[must_use]
    pub fn worst_case_program_time(&self) -> Seconds {
        Seconds::from_seconds(self.write_pulse.as_seconds() * f64::from(self.levels - 1))
    }

    /// Effective update rate for worst-case programming.
    #[must_use]
    pub fn update_rate_hz(&self) -> f64 {
        1.0 / self.worst_case_program_time().as_seconds()
    }
}

impl Default for PcmCell {
    fn default() -> Self {
        PcmCell::gst_on_waveguide()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_spans_the_extremes() {
        let mut cell = PcmCell::gst_on_waveguide();
        assert!((cell.transmission() - 0.95).abs() < 1e-12);
        cell.program(31);
        assert!((cell.transmission() - 0.30).abs() < 1e-12);
    }

    #[test]
    fn programming_costs_scale_with_distance() {
        let mut cell = PcmCell::gst_on_waveguide();
        let (t_full, e_full) = cell.program(31);
        let mut cell2 = PcmCell::gst_on_waveguide();
        let (t_one, e_one) = cell2.program(1);
        assert!((t_full.as_seconds() / t_one.as_seconds() - 31.0).abs() < 1e-9);
        assert!((e_full.as_joules() / e_one.as_joules() - 31.0).abs() < 1e-9);
    }

    #[test]
    fn reprogramming_same_level_is_free() {
        let mut cell = PcmCell::gst_on_waveguide();
        cell.program(10);
        let (t, e) = cell.program(10);
        assert_eq!(t, Seconds::ZERO);
        assert_eq!(e, Energy::ZERO);
    }

    #[test]
    fn update_rate_is_sub_gigahertz() {
        // The Table I footnote class: "~1 GHz PCM write speed" is per
        // pulse; a full multi-level excursion is far slower.
        let cell = PcmCell::gst_on_waveguide();
        assert!(cell.update_rate_hz() < 1e9);
        assert!(cell.update_rate_hz() > 1e4);
    }

    #[test]
    fn wear_accumulates() {
        let mut cell = PcmCell::gst_on_waveguide();
        cell.program(31);
        cell.program(0);
        assert!((cell.wear() - 62.0 / 1e8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_bounds_checked() {
        let mut cell = PcmCell::gst_on_waveguide();
        cell.program(32);
    }
}
