//! WDM bus propagation past a chain of microrings.
//!
//! A compute-core bus waveguide carries the whole intensity-encoded input
//! vector; each multiplier ring is tuned to one channel but, being a real
//! filter, also nibbles at its neighbours. Propagating a [`WdmSignal`]
//! through every ring's thru response is exactly where that inter-channel
//! crosstalk enters the model — the paper includes all rings in each
//! single-wavelength testbench for the same reason (§IV-B).

use crate::{Mrr, OperatingPoint};
use pic_signal::WdmSignal;
use pic_units::Wavelength;

/// Propagates `signal` along a bus past each `(ring, operating point)` in
/// order, taking every ring's thru port. Returns the signal that reaches the
/// end-of-bus photodiode.
#[must_use]
pub fn propagate_thru(signal: &WdmSignal, stages: &[(&Mrr, OperatingPoint)]) -> WdmSignal {
    let mut out = signal.clone();
    for &(ring, op) in stages {
        out = out.transmit(|wl| ring.thru_transmission(wl, op));
    }
    out
}

/// End-to-end thru transmission of the bus at each grid wavelength: element
/// `ch` is the product of every ring's thru response at `grid[ch]`.
///
/// This is the linear-map view of [`propagate_thru`]: since each ring acts
/// multiplicatively per channel, the whole bus collapses to one gain per
/// wavelength that can be computed once for a fixed set of operating points
/// and reused for any input powers — the basis of the tensor core's cached
/// weight path.
#[must_use]
pub fn channel_path_transmissions(
    grid: &[Wavelength],
    stages: &[(&Mrr, OperatingPoint)],
) -> Vec<f64> {
    grid.iter()
        .map(|&wl| {
            stages
                .iter()
                .map(|&(ring, op)| ring.thru_transmission(wl, op))
                .product()
        })
        .collect()
}

/// Power each ring's drop port extracts while `signal` propagates down the
/// bus, plus the surviving thru signal. Element `i` of the returned vector
/// is what ring `i` dropped (summed over channels, in watts).
#[must_use]
pub fn propagate_with_drops(
    signal: &WdmSignal,
    stages: &[(&Mrr, OperatingPoint)],
) -> (WdmSignal, Vec<f64>) {
    let mut thru = signal.clone();
    let mut drops = Vec::with_capacity(stages.len());
    for &(ring, op) in stages {
        let dropped: f64 = thru
            .wavelengths()
            .iter()
            .zip(thru.powers())
            .map(|(&wl, &p)| p.as_watts() * ring.drop_transmission(wl, op))
            .sum();
        drops.push(dropped);
        thru = thru.transmit(|wl| ring.thru_transmission(wl, op));
    }
    (thru, drops)
}

/// Worst-case crosstalk of a ring bank on a uniform channel grid: the
/// largest fraction of a *neighbouring* channel's power that an on-resonance
/// ring removes (ideal would be zero).
///
/// Used by the channel-spacing ablation: the paper picks 2.33 nm spacing on
/// a 9.36 nm FSR precisely to keep this number small.
#[must_use]
pub fn adjacent_channel_crosstalk(rings: &[Mrr], grid: &[Wavelength]) -> f64 {
    let mut worst: f64 = 0.0;
    for (i, ring) in rings.iter().enumerate() {
        for (j, &wl) in grid.iter().enumerate() {
            if i == j {
                continue;
            }
            let removed = 1.0 - ring.thru_transmission(wl, OperatingPoint::unbiased());
            worst = worst.max(removed);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyComb;
    use pic_units::OpticalPower;

    fn paper_bank() -> (Vec<Mrr>, Vec<Wavelength>) {
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let grid = comb.wavelengths();
        let rings = (0..4)
            .map(|i| {
                Mrr::compute_ring_design()
                    .length_adjust_nm(68.0 * i as f64)
                    .build()
            })
            .collect();
        (rings, grid)
    }

    #[test]
    fn each_ring_targets_its_channel() {
        let (rings, grid) = paper_bank();
        for (i, ring) in rings.iter().enumerate() {
            let res = ring.resonance_near(grid[i], OperatingPoint::unbiased());
            assert!(
                (res.as_nanometers() - grid[i].as_nanometers()).abs() < 0.08,
                "ring {i} resonates at {res}, wants {}",
                grid[i]
            );
        }
    }

    #[test]
    fn on_resonance_ring_extinguishes_only_its_channel() {
        let (rings, grid) = paper_bank();
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let sig = comb.full_power_signal();
        let stages: Vec<_> = rings
            .iter()
            .enumerate()
            .map(|(i, r)| {
                // Only ring 1 on resonance; others detuned by bias.
                let op = if i == 1 {
                    OperatingPoint::unbiased()
                } else {
                    OperatingPoint::at_voltage(pic_units::Voltage::from_volts(1.0))
                };
                (r, op)
            })
            .collect();
        let out = propagate_thru(&sig, &stages);
        assert!(out.power(1).as_milliwatts() < 0.1, "target channel dropped");
        for ch in [0, 2, 3] {
            assert!(
                out.power(ch).as_milliwatts() > 0.75,
                "channel {ch} should mostly survive, got {}",
                out.power(ch)
            );
            let _ = grid[ch];
        }
    }

    #[test]
    fn drops_account_for_missing_power() {
        let (rings, _) = paper_bank();
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let sig = comb.full_power_signal();
        let stages: Vec<_> = rings
            .iter()
            .map(|r| (r, OperatingPoint::unbiased()))
            .collect();
        let (thru, drops) = propagate_with_drops(&sig, &stages);
        let in_w = sig.total_power().as_watts();
        let out_w = thru.total_power().as_watts() + drops.iter().sum::<f64>();
        // Ring round-trip loss dissipates a little; nothing is created.
        assert!(out_w <= in_w + 1e-15);
        assert!(out_w > 0.8 * in_w, "too much unexplained loss");
    }

    #[test]
    fn channel_path_transmissions_match_propagation() {
        let (rings, grid) = paper_bank();
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let sig = comb.full_power_signal();
        let stages: Vec<_> = rings
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let op = if i % 2 == 0 {
                    OperatingPoint::unbiased()
                } else {
                    OperatingPoint::at_voltage(pic_units::Voltage::from_volts(1.0))
                };
                (r, op)
            })
            .collect();
        let walked = propagate_thru(&sig, &stages);
        let gains = channel_path_transmissions(&grid, &stages);
        for (ch, &gain) in gains.iter().enumerate() {
            let expected = sig.power(ch).as_watts() * gain;
            let got = walked.power(ch).as_watts();
            assert!(
                (got - expected).abs() <= 1e-12 * expected.max(1e-18),
                "channel {ch}: walked {got} W vs linear-map {expected} W"
            );
        }
    }

    #[test]
    fn paper_spacing_keeps_crosstalk_low() {
        let (rings, grid) = paper_bank();
        let xt = adjacent_channel_crosstalk(&rings, &grid);
        assert!(
            xt < 0.05,
            "2.33 nm spacing should give <5 % crosstalk, got {xt}"
        );
    }
}
