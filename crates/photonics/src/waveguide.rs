//! Waveguide propagation loss.

use pic_units::{OpticalPower, Ratio};

/// A straight/routed waveguide segment with length-proportional loss.
///
/// ```
/// use pic_photonics::Waveguide;
/// use pic_units::OpticalPower;
///
/// let wg = Waveguide::new(1.0, 1.5); // 1 cm at 1.5 dB/cm
/// let out = wg.propagate(OpticalPower::from_milliwatts(1.0));
/// assert!((out.as_dbm() + 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Waveguide {
    length_cm: f64,
    loss_db_per_cm: f64,
}

impl Waveguide {
    /// Creates a waveguide of `length_cm` with the given propagation loss.
    ///
    /// # Panics
    ///
    /// Panics if length or loss is negative.
    #[must_use]
    pub fn new(length_cm: f64, loss_db_per_cm: f64) -> Self {
        assert!(length_cm >= 0.0, "length must be non-negative");
        assert!(loss_db_per_cm >= 0.0, "loss must be non-negative");
        Waveguide {
            length_cm,
            loss_db_per_cm,
        }
    }

    /// A waveguide of `length_cm` with the platform's calibrated loss.
    #[must_use]
    pub fn platform(length_cm: f64) -> Self {
        Waveguide::new(length_cm, crate::calib::WAVEGUIDE_LOSS_DB_PER_CM)
    }

    /// Segment length in centimeters.
    #[must_use]
    pub fn length_cm(&self) -> f64 {
        self.length_cm
    }

    /// End-to-end power transmission ratio.
    #[must_use]
    pub fn transmission(&self) -> Ratio {
        Ratio::from_db(-self.loss_db_per_cm * self.length_cm)
    }

    /// Power at the far end of the segment.
    #[must_use]
    pub fn propagate(&self, input: OpticalPower) -> OpticalPower {
        input.attenuate(self.transmission())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_is_lossless() {
        let wg = Waveguide::platform(0.0);
        let p = OpticalPower::from_milliwatts(1.0);
        assert_eq!(wg.propagate(p), p);
    }

    #[test]
    fn loss_compounds_with_length() {
        let one = Waveguide::new(1.0, 2.0).transmission().as_db();
        let two = Waveguide::new(2.0, 2.0).transmission().as_db();
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_length() {
        let _ = Waveguide::new(-1.0, 1.0);
    }
}
