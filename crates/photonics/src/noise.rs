//! Photodetection noise models: shot, thermal (Johnson) and laser RIN.
//!
//! The paper's simulations are noiseless; a physical implementation of the
//! eoADC's thresholding blocks and the compute core's summing photodiodes
//! sees three classic contributions, all modelled here as white Gaussian
//! current noise over a detection bandwidth:
//!
//! * **shot noise** — `σ² = 2·q·I·B`;
//! * **thermal noise** — `σ² = 4·k_B·T·B / R_load`;
//! * **relative intensity noise** — `σ² = RIN·I²·B`.
//!
//! Used by the `ablation_noise` study to find where the analog dot product
//! runs out of effective resolution.

use pic_units::constants::{BOLTZMANN, ELEMENTARY_CHARGE};
use pic_units::{Current, Frequency, OpticalPower, Resistance};
use rand::Rng;
use rand_distr_normal::sample_standard_normal;

/// Minimal Box–Muller standard-normal sampler so the workspace does not
/// need a full distributions crate.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal draw by Box–Muller.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Noise operating point of a photodetection front end.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NoiseModel {
    /// Detection (noise) bandwidth.
    pub bandwidth: Frequency,
    /// Temperature, K.
    pub temperature_k: f64,
    /// Effective load/transimpedance input resistance.
    pub load: Resistance,
    /// Laser relative intensity noise, 1/Hz (linear, not dB).
    pub rin_per_hz: f64,
}

impl NoiseModel {
    /// A typical receiver at the paper's operating point: 8 GHz noise
    /// bandwidth, 300 K, 10 kΩ transimpedance input, −150 dB/Hz RIN.
    #[must_use]
    pub fn paper_receiver() -> Self {
        NoiseModel {
            bandwidth: Frequency::from_gigahertz(8.0),
            temperature_k: 300.0,
            load: Resistance::from_ohms(10_000.0),
            rin_per_hz: 10f64.powf(-150.0 / 10.0),
        }
    }

    /// Validates the model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive (RIN may be zero).
    pub fn validate(&self) {
        assert!(
            self.bandwidth.as_hertz() > 0.0,
            "bandwidth must be positive"
        );
        assert!(self.temperature_k > 0.0, "temperature must be positive");
        assert!(self.load.as_ohms() > 0.0, "load must be positive");
        assert!(self.rin_per_hz >= 0.0, "RIN must be non-negative");
    }

    /// Shot-noise RMS current for mean photocurrent `i`.
    #[must_use]
    pub fn shot_rms(&self, i: Current) -> Current {
        Current::from_amps(
            (2.0 * ELEMENTARY_CHARGE * i.as_amps().abs() * self.bandwidth.as_hertz()).sqrt(),
        )
    }

    /// Thermal (Johnson) RMS current of the load.
    #[must_use]
    pub fn thermal_rms(&self) -> Current {
        Current::from_amps(
            (4.0 * BOLTZMANN * self.temperature_k * self.bandwidth.as_hertz()
                / self.load.as_ohms())
            .sqrt(),
        )
    }

    /// RIN-induced RMS current for mean photocurrent `i`.
    #[must_use]
    pub fn rin_rms(&self, i: Current) -> Current {
        Current::from_amps(
            (self.rin_per_hz * i.as_amps() * i.as_amps() * self.bandwidth.as_hertz()).sqrt(),
        )
    }

    /// Total RMS noise current at mean photocurrent `i` (contributions add
    /// in power).
    #[must_use]
    pub fn total_rms(&self, i: Current) -> Current {
        let s = self.shot_rms(i).as_amps();
        let t = self.thermal_rms().as_amps();
        let r = self.rin_rms(i).as_amps();
        Current::from_amps((s * s + t * t + r * r).sqrt())
    }

    /// Draws one noisy sample of the photocurrent.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, mean: Current, rng: &mut R) -> Current {
        let sigma = self.total_rms(mean).as_amps();
        Current::from_amps(mean.as_amps() + sigma * sample_standard_normal(rng))
    }

    /// Signal-to-noise ratio (dB) of a photocurrent step of size
    /// `signal` riding on mean current `mean`.
    #[must_use]
    pub fn snr_db(&self, signal: Current, mean: Current) -> f64 {
        20.0 * (signal.as_amps().abs() / self.total_rms(mean).as_amps()).log10()
    }

    /// The number of distinguishable levels (at 1σ separation) a detector
    /// with full-scale current `full_scale` supports — an effective
    /// resolution bound for the analog dot product.
    #[must_use]
    pub fn resolvable_levels(&self, full_scale: Current) -> f64 {
        full_scale.as_amps() / self.total_rms(full_scale).as_amps()
    }
}

/// Convenience: the mean photocurrent and noise of a detector watching
/// `power` with the platform responsivity.
#[must_use]
pub fn detect_with_noise<R: Rng + ?Sized>(
    power: OpticalPower,
    model: &NoiseModel,
    rng: &mut R,
) -> Current {
    let mean = power.photocurrent(crate::calib::PHOTODIODE_RESPONSIVITY_A_PER_W);
    model.sample(mean, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> NoiseModel {
        NoiseModel::paper_receiver()
    }

    #[test]
    fn shot_noise_scales_with_sqrt_current() {
        let m = model();
        let a = m.shot_rms(Current::from_microamps(1.0)).as_amps();
        let b = m.shot_rms(Current::from_microamps(4.0)).as_amps();
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_noise_is_current_independent() {
        let m = model();
        assert_eq!(m.thermal_rms(), m.thermal_rms());
        // ~0.115 µA for 10 kΩ at 8 GHz — sanity of magnitude.
        let ua = m.thermal_rms().as_microamps();
        assert!(ua > 0.01 && ua < 1.0, "thermal rms {ua} µA");
    }

    #[test]
    fn sampled_statistics_match_model() {
        let m = model();
        let mean = Current::from_microamps(100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| m.sample(mean, &mut rng).as_amps()).collect();
        let emp_mean = draws.iter().sum::<f64>() / n as f64;
        let emp_var = draws.iter().map(|d| (d - emp_mean).powi(2)).sum::<f64>() / n as f64;
        let sigma = m.total_rms(mean).as_amps();
        assert!((emp_mean - mean.as_amps()).abs() < 4.0 * sigma / (n as f64).sqrt());
        assert!((emp_var.sqrt() / sigma - 1.0).abs() < 0.05);
    }

    #[test]
    fn snr_improves_with_optical_power() {
        let m = model();
        let low = m.snr_db(Current::from_microamps(1.0), Current::from_microamps(10.0));
        let high = m.snr_db(
            Current::from_microamps(10.0),
            Current::from_microamps(100.0),
        );
        assert!(high > low);
    }

    #[test]
    fn resolvable_levels_monotone_in_full_scale() {
        let m = model();
        let small = m.resolvable_levels(Current::from_microamps(10.0));
        let large = m.resolvable_levels(Current::from_microamps(1000.0));
        assert!(large > small);
        // The paper's ~µA-scale dot products support a few hundred levels.
        assert!(small > 3.0);
    }

    #[test]
    fn detect_with_noise_centres_on_responsivity() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| {
                detect_with_noise(OpticalPower::from_microwatts(100.0), &m, &mut rng).as_amps()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 90e-6).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn validate_rejects_zero_bandwidth() {
        let mut m = model();
        m.bandwidth = Frequency::ZERO;
        m.validate();
    }
}
