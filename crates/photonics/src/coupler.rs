//! Directional-coupler physics: gap-dependent ring/bus coupling.
//!
//! The paper specifies its rings by geometry: "7.5 µm ring radius and a
//! 200 nm gap at the thru-port" (§IV-B), "10 µm radius MRR with a 250 nm
//! gap" (§IV-C). The field self-coupling coefficient `t` that the
//! coupled-mode ring model consumes is set by that gap through the
//! evanescent overlap, which falls exponentially with separation:
//!
//! ```text
//! κ(g) = κ₀ · exp(−g / g₀),   t = √(1 − κ²)
//! ```
//!
//! The decay constant `g₀` is a property of the waveguide mode; `κ₀` is
//! calibrated so the paper's two published gaps land on the two coupling
//! values the spectral calibration already fixed (see [`crate::calib`]) —
//! one curve through both points.

/// Evanescent decay length of the coupler gap, nm — fitted so one
/// exponential passes through both of the paper's design points
/// (200 nm → the compute ring's coupling, 250 nm → the ADC ring's).
pub const GAP_DECAY_NM: f64 = 159.518;

/// Exponential prefactor of the κ(gap) fit. Slightly above 1 because it
/// extrapolates the 150–400 nm fit region down to zero gap, where the
/// physical κ saturates at 1 (the clamp below); the model is only meant
/// for fabricable gaps.
pub const KAPPA_PREFACTOR: f64 = 1.09397;

/// Field cross-coupling coefficient `κ(gap)`, clamped to the physical
/// `[0, 1]`.
///
/// # Panics
///
/// Panics if `gap_nm` is negative.
#[must_use]
pub fn cross_coupling(gap_nm: f64) -> f64 {
    assert!(gap_nm >= 0.0, "gap must be non-negative");
    (KAPPA_PREFACTOR * (-gap_nm / GAP_DECAY_NM).exp()).min(1.0)
}

/// Field self-coupling coefficient `t(gap) = √(1 − κ²)` — what
/// [`crate::MrrBuilder::self_coupling`] consumes.
#[must_use]
pub fn self_coupling(gap_nm: f64) -> f64 {
    let k = cross_coupling(gap_nm);
    (1.0 - k * k).sqrt()
}

/// The gap that produces a desired self-coupling — the design inverse.
///
/// # Panics
///
/// Panics if `t` is outside `(0, 1)` or unreachable (stronger than the
/// zero-gap coupling allows).
#[must_use]
pub fn gap_for_self_coupling(t: f64) -> f64 {
    assert!(t > 0.0 && t < 1.0, "self-coupling must be in (0, 1)");
    let kappa = (1.0 - t * t).sqrt();
    assert!(
        kappa <= KAPPA_PREFACTOR,
        "coupling κ = {kappa} unreachable even at zero gap"
    );
    -GAP_DECAY_NM * (kappa / KAPPA_PREFACTOR).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_decays_with_gap() {
        let near = cross_coupling(100.0);
        let far = cross_coupling(400.0);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn paper_gaps_land_near_calibrated_couplings() {
        // 200 nm → the compute ring's t ≈ 0.95; 250 nm → the ADC ring's
        // t ≈ 0.974. One exponential through both published points.
        let t200 = self_coupling(200.0);
        let t250 = self_coupling(250.0);
        assert!(
            (t200 - crate::calib::COMPUTE_RING_SELF_COUPLING).abs() < 0.01,
            "200 nm gap gives t = {t200}"
        );
        assert!(
            (t250 - crate::calib::ADC_RING_SELF_COUPLING).abs() < 0.01,
            "250 nm gap gives t = {t250}"
        );
    }

    #[test]
    fn gap_inverse_round_trips() {
        for gap in [150.0, 200.0, 250.0, 350.0] {
            let t = self_coupling(gap);
            let back = gap_for_self_coupling(t);
            assert!((back - gap).abs() < 1e-6, "gap {gap} → t {t} → {back}");
        }
    }

    #[test]
    fn wider_gap_means_higher_q() {
        // The physical chain: wider gap → weaker coupling → narrower
        // linewidth. Build two rings differing only in gap.
        use crate::Mrr;
        use pic_units::Wavelength;
        let build = |gap: f64| {
            Mrr::compute_ring_design()
                .self_coupling(self_coupling(gap), self_coupling(gap))
                .build()
        };
        let q_narrow_gap = build(200.0).loaded_q(Wavelength::from_nanometers(1310.0));
        let q_wide_gap = build(300.0).loaded_q(Wavelength::from_nanometers(1310.0));
        assert!(q_wide_gap > q_narrow_gap);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_gap() {
        let _ = cross_coupling(-1.0);
    }
}
