//! Calibration constants fitted to the paper's reported device behaviour.
//!
//! The authors simulate foundry compact models (GF45SPCLO) that are not
//! publicly available. These constants make the analytic models in this
//! crate land on every number the paper *does* report:
//!
//! * compute-core ring: 7.5 µm radius, 200 nm thru gap, FSR = 9.36 nm,
//!   resonance shift of 2.33 nm per 68 nm of circumference adjustment
//!   (§IV-B / Fig. 6);
//! * eoADC ring: 10 µm radius, 250 nm gap, operated at 1310.5 nm with
//!   200 µW of input and an 18 µW reference (§IV-C / Figs. 8, 10).
//!
//! Fitting notes: the FSR pins the group index `n_g = λ²/(FSR·L)`; the
//! dλ/dL slope pins the model's effective index through
//! `dλ/dL = λ·n_eff/(L·n_g)`. Meeting both of the paper's numbers requires
//! `n_eff > n_g`, which real strip silicon does not satisfy — we keep them
//! as independent calibration constants and document the discrepancy here
//! rather than silently missing one of the published targets.

/// Nominal compute-core ring radius, µm (paper §IV-B).
pub const COMPUTE_RING_RADIUS_UM: f64 = 7.5;

/// Compute-ring effective index fitted to the 2.33 nm / 68 nm slope.
pub const COMPUTE_RING_N_EFF: f64 = 4.7957;

/// Compute-ring group index fitted to the 9.36 nm FSR.
pub const COMPUTE_RING_N_G: f64 = 3.8907;

/// Compute-ring field self-coupling at both couplers (200 nm gap class).
pub const COMPUTE_RING_SELF_COUPLING: f64 = 0.95;

/// Compute-ring round-trip amplitude (loss).
pub const COMPUTE_RING_ROUND_TRIP: f64 = 0.999;

/// pSRAM/multiplier ring electro-optic tuning, nm of red shift per volt of
/// forward drive. Sized so a full 0→VDD swing moves the ring several
/// linewidths (on/off extinction for 1-bit multiplication, §II-B).
pub const COMPUTE_RING_TUNING_NM_PER_V: f64 = 0.60;

/// eoADC ring radius, µm (paper §IV-C).
pub const ADC_RING_RADIUS_UM: f64 = 10.0;

/// eoADC ring effective index (same platform fit as the compute ring).
pub const ADC_RING_N_EFF: f64 = 4.7957;

/// eoADC ring group index.
pub const ADC_RING_N_G: f64 = 3.8907;

/// eoADC ring field self-coupling (250 nm gap → weaker coupling, higher Q).
pub const ADC_RING_SELF_COUPLING: f64 = 0.9736;

/// eoADC ring round-trip amplitude.
pub const ADC_RING_ROUND_TRIP: f64 = 0.995;

/// Thermo-optic tuning of all rings, nm per kelvin (standard silicon
/// ~70–80 pm/K; used by the thermal-drift experiments).
pub const RING_THERMAL_NM_PER_K: f64 = 0.075;

/// Waveguide propagation loss, dB/cm (typical monolithic silicon platform).
pub const WAVEGUIDE_LOSS_DB_PER_CM: f64 = 1.5;

/// Photodiode responsivity at the O-band, A/W.
pub const PHOTODIODE_RESPONSIVITY_A_PER_W: f64 = 0.9;

/// Photodiode dark current, A.
pub const PHOTODIODE_DARK_CURRENT_A: f64 = 10e-9;

/// Photodiode opto-electrical bandwidth, GHz (the paper's PDs support
/// multi-GHz operation; the eoADC, not the PD, limits speed).
pub const PHOTODIODE_BANDWIDTH_GHZ: f64 = 50.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn couplings_are_physical() {
        for t in [COMPUTE_RING_SELF_COUPLING, ADC_RING_SELF_COUPLING] {
            assert!(t > 0.0 && t < 1.0);
        }
        for a in [COMPUTE_RING_ROUND_TRIP, ADC_RING_ROUND_TRIP] {
            assert!(a > 0.9 && a <= 1.0);
        }
    }

    #[test]
    fn fsr_fit_recovers_paper_value() {
        let circumference = 2.0 * std::f64::consts::PI * COMPUTE_RING_RADIUS_UM * 1e-6;
        let fsr_nm = (1.31e-6_f64).powi(2) / (COMPUTE_RING_N_G * circumference) * 1e9;
        assert!((fsr_nm - 9.36).abs() < 0.05, "FSR fit drifted: {fsr_nm}");
    }

    #[test]
    fn dlambda_dl_fit_recovers_paper_value() {
        let circumference = 2.0 * std::f64::consts::PI * COMPUTE_RING_RADIUS_UM * 1e-6;
        // dλ/dL = λ n_eff / (L n_g); paper: 2.33 nm per 68 nm.
        let slope = 1.31e-6 * COMPUTE_RING_N_EFF / (circumference * COMPUTE_RING_N_G);
        assert!((slope * 68.0 - 2.33).abs() < 0.03, "dλ/dL fit drifted");
    }
}
