//! Passive optical absorber (stray-light termination).

use pic_units::{Energy, OpticalPower, Seconds};

/// A passive absorber terminating a waveguide, as used at the unused ports
/// of the pSRAM bitcell (A1/A2 in Fig. 1) and at the binary ladder's
/// remainder branch.
///
/// It swallows whatever power reaches it and keeps a tally, so power-budget
/// audits can account for every photon.
///
/// ```
/// use pic_photonics::Absorber;
/// use pic_units::{OpticalPower, Seconds};
///
/// let mut a = Absorber::new();
/// a.absorb(OpticalPower::from_milliwatts(1.0), Seconds::from_picoseconds(100.0));
/// assert!((a.dissipated().as_femtojoules() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Absorber {
    dissipated: Energy,
}

impl Absorber {
    /// Creates an absorber with an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Absorber::default()
    }

    /// Absorbs `power` for `dt`, accumulating the dissipated energy.
    pub fn absorb(&mut self, power: OpticalPower, dt: Seconds) {
        self.dissipated += Energy::from_joules(power.as_watts() * dt.as_seconds());
    }

    /// Total optical energy dissipated so far.
    #[must_use]
    pub fn dissipated(&self) -> Energy {
        self.dissipated
    }

    /// Resets the tally.
    pub fn reset(&mut self) {
        self.dissipated = Energy::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        let mut a = Absorber::new();
        a.absorb(
            OpticalPower::from_milliwatts(2.0),
            Seconds::from_picoseconds(50.0),
        );
        a.absorb(
            OpticalPower::from_milliwatts(2.0),
            Seconds::from_picoseconds(50.0),
        );
        assert!((a.dissipated().as_femtojoules() - 200.0).abs() < 1e-9);
        a.reset();
        assert_eq!(a.dissipated(), Energy::ZERO);
    }
}
