//! Add-drop microring resonator model.
//!
//! Power transfer functions follow the standard coupled-mode result (e.g.
//! Bogaerts et al., *Silicon microring resonators*, 2012): with field
//! self-coupling `t1` (input bus), `t2` (drop bus), single-round-trip
//! amplitude `a` and round-trip phase `φ`,
//!
//! ```text
//! T_thru(φ) = (t2²a² − 2·t1·t2·a·cosφ + t1²) / (1 − 2·t1·t2·a·cosφ + (t1·t2·a)²)
//! T_drop(φ) = ((1 − t1²)(1 − t2²)·a)        / (1 − 2·t1·t2·a·cosφ + (t1·t2·a)²)
//! ```
//!
//! The phase includes first-order dispersion (independent `n_eff`/`n_g`),
//! plasma-dispersion tuning from the pn-junction voltage, and thermo-optic
//! tuning — the three knobs the paper uses (Figs. 3a, 6, 8).

use pic_signal::Spectrum;
use pic_units::{Voltage, Wavelength};

/// Electrical/thermal operating point of a ring.
///
/// ```
/// use pic_photonics::OperatingPoint;
/// use pic_units::Voltage;
///
/// let op = OperatingPoint::at_voltage(Voltage::from_volts(0.45));
/// assert_eq!(op.delta_temp_k, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct OperatingPoint {
    /// Voltage across the pn junction (sign convention chosen by the
    /// subsystem; positive shifts the resonance red by `tuning_nm_per_v`).
    pub voltage: Voltage,
    /// Temperature offset from the calibration point, K.
    pub delta_temp_k: f64,
}

impl OperatingPoint {
    /// No electrical bias, no thermal offset.
    #[must_use]
    pub fn unbiased() -> Self {
        OperatingPoint::default()
    }

    /// Alias of [`OperatingPoint::unbiased`]: the state in which a ring
    /// built with default calibration sits exactly on resonance.
    #[must_use]
    pub fn on_state() -> Self {
        OperatingPoint::default()
    }

    /// Only an electrical bias.
    #[must_use]
    pub fn at_voltage(voltage: Voltage) -> Self {
        OperatingPoint {
            voltage,
            delta_temp_k: 0.0,
        }
    }

    /// Electrical bias plus thermal offset.
    #[must_use]
    pub fn new(voltage: Voltage, delta_temp_k: f64) -> Self {
        OperatingPoint {
            voltage,
            delta_temp_k,
        }
    }
}

/// An add-drop microring resonator.
///
/// Construct through [`MrrBuilder`] (see [`Mrr::builder`]), or start from the
/// paper-calibrated design points [`Mrr::compute_ring_design`] /
/// [`Mrr::adc_ring_design`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mrr {
    circumference_m: f64,
    n_eff0: f64,
    n_g: f64,
    lambda_ref_m: f64,
    t1: f64,
    t2: f64,
    round_trip: f64,
    tuning_nm_per_v: f64,
    thermal_nm_per_k: f64,
    design_wavelength_m: f64,
    design_voltage: Voltage,
}

impl Mrr {
    /// Starts building a ring from scratch.
    #[must_use]
    pub fn builder() -> MrrBuilder {
        MrrBuilder::default()
    }

    /// Builder preloaded with the paper's compute-core ring
    /// (7.5 µm radius, 200 nm gap class; §IV-B), resonant at 1310 nm when
    /// unbiased.
    #[must_use]
    pub fn compute_ring_design() -> MrrBuilder {
        use crate::calib::*;
        MrrBuilder::default()
            .radius_um(COMPUTE_RING_RADIUS_UM)
            .indices(COMPUTE_RING_N_EFF, COMPUTE_RING_N_G)
            .self_coupling(COMPUTE_RING_SELF_COUPLING, COMPUTE_RING_SELF_COUPLING)
            .round_trip(COMPUTE_RING_ROUND_TRIP)
            .tuning_nm_per_v(COMPUTE_RING_TUNING_NM_PER_V)
            .thermal_nm_per_k(RING_THERMAL_NM_PER_K)
            .resonant_at(
                Wavelength::from_nanometers(pic_units::constants::O_BAND_NM),
                Voltage::ZERO,
            )
    }

    /// Builder preloaded with the paper's eoADC quantiser ring
    /// (10 µm radius, 250 nm gap class; §IV-C), resonant at 1310.5 nm when
    /// unbiased.
    #[must_use]
    pub fn adc_ring_design() -> MrrBuilder {
        use crate::calib::*;
        MrrBuilder::default()
            .radius_um(ADC_RING_RADIUS_UM)
            .indices(ADC_RING_N_EFF, ADC_RING_N_G)
            .self_coupling(ADC_RING_SELF_COUPLING, ADC_RING_SELF_COUPLING)
            .round_trip(ADC_RING_ROUND_TRIP)
            // The eoADC tuning constant is re-derived by the eoADC crate's
            // ladder calibration; this default matches its result.
            .tuning_nm_per_v(0.076)
            .thermal_nm_per_k(RING_THERMAL_NM_PER_K)
            .resonant_at(
                Wavelength::from_nanometers(pic_units::constants::EOADC_WAVELENGTH_NM),
                Voltage::ZERO,
            )
    }

    /// The wavelength this ring was calibrated to resonate at (at its
    /// design voltage).
    #[must_use]
    pub fn design_wavelength(&self) -> Wavelength {
        Wavelength::from_meters(self.design_wavelength_m)
    }

    /// Ring circumference in meters (after calibration and length
    /// adjustment).
    #[must_use]
    pub fn circumference_m(&self) -> f64 {
        self.circumference_m
    }

    /// Effective index at the operating point and wavelength.
    fn n_eff(&self, wl: Wavelength, op: OperatingPoint) -> f64 {
        let lam = wl.as_meters();
        let dispersion = (self.n_eff0 - self.n_g) * (lam - self.lambda_ref_m) / self.lambda_ref_m;
        // Convert the tuning specs (nm shift per volt / per kelvin) into
        // index shifts: dλ = λ·dn/n_g  ⇒  dn = dλ·n_g/λ.
        let dn_per_nm = self.n_g / (self.lambda_ref_m * 1e9);
        let electro = self.tuning_nm_per_v * op.voltage.as_volts() * dn_per_nm;
        let thermal = self.thermal_nm_per_k * op.delta_temp_k * dn_per_nm;
        self.n_eff0 + dispersion + electro + thermal
    }

    /// Round-trip phase at `wl` under `op`.
    #[must_use]
    pub fn round_trip_phase(&self, wl: Wavelength, op: OperatingPoint) -> f64 {
        2.0 * std::f64::consts::PI * self.n_eff(wl, op) * self.circumference_m / wl.as_meters()
    }

    /// Thru-port power transmission in `[0, 1]`.
    #[must_use]
    pub fn thru_transmission(&self, wl: Wavelength, op: OperatingPoint) -> f64 {
        let (t1, t2, a) = (self.t1, self.t2, self.round_trip);
        let cphi = self.round_trip_phase(wl, op).cos();
        let num = t2 * t2 * a * a - 2.0 * t1 * t2 * a * cphi + t1 * t1;
        let den = 1.0 - 2.0 * t1 * t2 * a * cphi + (t1 * t2 * a).powi(2);
        (num / den).clamp(0.0, 1.0)
    }

    /// Drop-port power transmission in `[0, 1]`.
    #[must_use]
    pub fn drop_transmission(&self, wl: Wavelength, op: OperatingPoint) -> f64 {
        let (t1, t2, a) = (self.t1, self.t2, self.round_trip);
        let cphi = self.round_trip_phase(wl, op).cos();
        let num = (1.0 - t1 * t1) * (1.0 - t2 * t2) * a;
        let den = 1.0 - 2.0 * t1 * t2 * a * cphi + (t1 * t2 * a).powi(2);
        (num / den).clamp(0.0, 1.0)
    }

    /// Free spectral range near `wl`.
    #[must_use]
    pub fn fsr_near(&self, wl: Wavelength) -> Wavelength {
        Wavelength::from_meters(wl.as_meters().powi(2) / (self.n_g * self.circumference_m))
    }

    /// Full-width-half-maximum linewidth of the resonance near `wl`.
    #[must_use]
    pub fn linewidth_fwhm(&self, wl: Wavelength) -> Wavelength {
        let ta = self.t1 * self.t2 * self.round_trip;
        let lam = wl.as_meters();
        Wavelength::from_meters(
            (1.0 - ta) * lam * lam
                / (std::f64::consts::PI * self.n_g * self.circumference_m * ta.sqrt()),
        )
    }

    /// Loaded quality factor near `wl`.
    #[must_use]
    pub fn loaded_q(&self, wl: Wavelength) -> f64 {
        wl.as_meters() / self.linewidth_fwhm(wl).as_meters()
    }

    /// Resonance red-shift produced by voltage `v`, in nanometers (signed).
    #[must_use]
    pub fn voltage_shift_nm(&self, v: Voltage) -> f64 {
        self.tuning_nm_per_v * (v.as_volts() - self.design_voltage.as_volts())
    }

    /// All resonance wavelengths inside `[start, end]` under `op`, found by
    /// bisection on the (monotone) round-trip phase.
    #[must_use]
    pub fn resonances_in(
        &self,
        start: Wavelength,
        end: Wavelength,
        op: OperatingPoint,
    ) -> Vec<Wavelength> {
        let phi_hi = self.round_trip_phase(start, op); // phase decreases with λ
        let phi_lo = self.round_trip_phase(end, op);
        let two_pi = 2.0 * std::f64::consts::PI;
        let m_max = (phi_hi / two_pi).floor() as i64;
        let m_min = (phi_lo / two_pi).ceil() as i64;
        let mut out = Vec::new();
        for m in m_min..=m_max {
            let target = m as f64 * two_pi;
            let (mut lo, mut hi) = (start.as_meters(), end.as_meters());
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                let phi = self.round_trip_phase(Wavelength::from_meters(mid), op);
                if phi > target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            out.push(Wavelength::from_meters(0.5 * (lo + hi)));
        }
        // Higher order m means shorter wavelength; report ascending in λ.
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite wavelengths"));
        out
    }

    /// The resonance wavelength closest to `near` under `op`.
    #[must_use]
    pub fn resonance_near(&self, near: Wavelength, op: OperatingPoint) -> Wavelength {
        let fsr = self.fsr_near(near).as_meters();
        let start = Wavelength::from_meters(near.as_meters() - fsr);
        let end = Wavelength::from_meters(near.as_meters() + fsr);
        self.resonances_in(start, end, op)
            .into_iter()
            .min_by(|a, b| {
                let da = (a.as_meters() - near.as_meters()).abs();
                let db = (b.as_meters() - near.as_meters()).abs();
                da.partial_cmp(&db).expect("finite wavelengths")
            })
            .expect("an FSR-wide window always contains a resonance")
    }

    /// Samples the thru-port transmission spectrum.
    #[must_use]
    pub fn thru_spectrum(
        &self,
        start: Wavelength,
        end: Wavelength,
        points: usize,
        op: OperatingPoint,
    ) -> Spectrum {
        Spectrum::sample(start, end, points, |wl| self.thru_transmission(wl, op))
    }

    /// Samples the drop-port transmission spectrum.
    #[must_use]
    pub fn drop_spectrum(
        &self,
        start: Wavelength,
        end: Wavelength,
        points: usize,
        op: OperatingPoint,
    ) -> Spectrum {
        Spectrum::sample(start, end, points, |wl| self.drop_transmission(wl, op))
    }
}

/// Builder for [`Mrr`] ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
#[derive(Debug, Clone)]
pub struct MrrBuilder {
    radius_um: f64,
    n_eff: f64,
    n_g: f64,
    t1: f64,
    t2: f64,
    round_trip: f64,
    tuning_nm_per_v: f64,
    thermal_nm_per_k: f64,
    resonant_at: Option<(Wavelength, Voltage)>,
    length_adjust_nm: f64,
}

impl Default for MrrBuilder {
    fn default() -> Self {
        MrrBuilder {
            radius_um: crate::calib::COMPUTE_RING_RADIUS_UM,
            n_eff: crate::calib::COMPUTE_RING_N_EFF,
            n_g: crate::calib::COMPUTE_RING_N_G,
            t1: crate::calib::COMPUTE_RING_SELF_COUPLING,
            t2: crate::calib::COMPUTE_RING_SELF_COUPLING,
            round_trip: crate::calib::COMPUTE_RING_ROUND_TRIP,
            tuning_nm_per_v: crate::calib::COMPUTE_RING_TUNING_NM_PER_V,
            thermal_nm_per_k: crate::calib::RING_THERMAL_NM_PER_K,
            resonant_at: None,
            length_adjust_nm: 0.0,
        }
    }
}

impl MrrBuilder {
    /// Sets the ring radius in micrometers.
    #[must_use]
    pub fn radius_um(mut self, radius_um: f64) -> Self {
        self.radius_um = radius_um;
        self
    }

    /// Sets the effective and group indices of the ring waveguide.
    #[must_use]
    pub fn indices(mut self, n_eff: f64, n_g: f64) -> Self {
        self.n_eff = n_eff;
        self.n_g = n_g;
        self
    }

    /// Sets the field self-coupling coefficients of the thru (`t1`) and
    /// drop (`t2`) couplers.
    #[must_use]
    pub fn self_coupling(mut self, t1: f64, t2: f64) -> Self {
        self.t1 = t1;
        self.t2 = t2;
        self
    }

    /// Sets both couplers by their physical gaps (nm), through the
    /// calibrated evanescent model in [`crate::coupler`] — the way the
    /// paper specifies its rings ("200 nm gap at the thru-port").
    #[must_use]
    pub fn coupling_gaps_nm(self, thru_gap_nm: f64, drop_gap_nm: f64) -> Self {
        self.self_coupling(
            crate::coupler::self_coupling(thru_gap_nm),
            crate::coupler::self_coupling(drop_gap_nm),
        )
    }

    /// Sets the single-round-trip field amplitude (loss).
    #[must_use]
    pub fn round_trip(mut self, a: f64) -> Self {
        self.round_trip = a;
        self
    }

    /// Sets the electro-optic tuning: nm of resonance red-shift per volt.
    #[must_use]
    pub fn tuning_nm_per_v(mut self, nm_per_v: f64) -> Self {
        self.tuning_nm_per_v = nm_per_v;
        self
    }

    /// Sets the thermo-optic tuning: nm of red-shift per kelvin.
    #[must_use]
    pub fn thermal_nm_per_k(mut self, nm_per_k: f64) -> Self {
        self.thermal_nm_per_k = nm_per_k;
        self
    }

    /// Trims the circumference so a resonance lands exactly on `wl` when
    /// the junction is biased at `v` — the design-time tuning the paper
    /// applies to every ring.
    #[must_use]
    pub fn resonant_at(mut self, wl: Wavelength, v: Voltage) -> Self {
        self.resonant_at = Some((wl, v));
        self
    }

    /// Adds `dl` nanometers of circumference on top of the calibrated
    /// length — the paper's WDM channel-selection knob (Fig. 6 uses
    /// 0/68/136/204 nm).
    #[must_use]
    pub fn length_adjust_nm(mut self, dl: f64) -> Self {
        self.length_adjust_nm = dl;
        self
    }

    /// Builds the ring.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is unphysical: non-positive radius or
    /// indices, couplings outside `(0, 1)`, round-trip outside `(0, 1]`.
    #[must_use]
    pub fn build(self) -> Mrr {
        assert!(self.radius_um > 0.0, "radius must be positive");
        assert!(
            self.n_eff > 0.0 && self.n_g > 0.0,
            "indices must be positive"
        );
        assert!(
            self.t1 > 0.0 && self.t1 < 1.0 && self.t2 > 0.0 && self.t2 < 1.0,
            "self-couplings must be in (0, 1)"
        );
        assert!(
            self.round_trip > 0.0 && self.round_trip <= 1.0,
            "round-trip amplitude must be in (0, 1]"
        );

        let base_circumference = 2.0 * std::f64::consts::PI * self.radius_um * 1e-6;
        let (lambda_ref, design_v) = self
            .resonant_at
            .unwrap_or((Wavelength::from_nanometers(1310.0), Voltage::ZERO));

        // Index at the design point (including the electro-optic offset of
        // the design voltage), used to pick the resonance order m.
        let dn_per_nm = self.n_g / (lambda_ref.as_meters() * 1e9);
        let n_design = self.n_eff + self.tuning_nm_per_v * design_v.as_volts() * dn_per_nm;
        let m = (n_design * base_circumference / lambda_ref.as_meters()).round();
        assert!(m >= 1.0, "ring too small to support a resonance");
        let calibrated = m * lambda_ref.as_meters() / n_design;

        Mrr {
            circumference_m: calibrated + self.length_adjust_nm * 1e-9,
            n_eff0: self.n_eff,
            n_g: self.n_g,
            lambda_ref_m: lambda_ref.as_meters(),
            t1: self.t1,
            t2: self.t2,
            round_trip: self.round_trip,
            tuning_nm_per_v: self.tuning_nm_per_v,
            thermal_nm_per_k: self.thermal_nm_per_k,
            design_wavelength_m: lambda_ref.as_meters(),
            design_voltage: design_v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nm(v: f64) -> Wavelength {
        Wavelength::from_nanometers(v)
    }

    #[test]
    fn calibrated_ring_is_resonant_at_design_point() {
        let ring = Mrr::compute_ring_design().build();
        let t = ring.thru_transmission(nm(1310.0), OperatingPoint::unbiased());
        assert!(
            t < 0.01,
            "thru at resonance should be extinguished, got {t}"
        );
        let d = ring.drop_transmission(nm(1310.0), OperatingPoint::unbiased());
        assert!(d > 0.8, "drop at resonance should be high, got {d}");
    }

    #[test]
    fn off_resonance_passes_thru() {
        let ring = Mrr::compute_ring_design().build();
        let t = ring.thru_transmission(nm(1311.0), OperatingPoint::unbiased());
        assert!(t > 0.85, "thru off resonance should be high, got {t}");
        let d = ring.drop_transmission(nm(1311.0), OperatingPoint::unbiased());
        assert!(d < 0.1, "drop off resonance should be low, got {d}");
    }

    #[test]
    fn fsr_matches_paper() {
        let ring = Mrr::compute_ring_design().build();
        let fsr = ring.fsr_near(nm(1310.0)).as_nanometers();
        assert!((fsr - 9.36).abs() < 0.05, "FSR {fsr} nm");
    }

    #[test]
    fn resonances_found_by_bisection_match_fsr() {
        let ring = Mrr::compute_ring_design().build();
        let rs = ring.resonances_in(nm(1300.0), nm(1325.0), OperatingPoint::unbiased());
        assert!(rs.len() >= 2);
        let spacing = rs[1].as_nanometers() - rs[0].as_nanometers();
        assert!((spacing - 9.36).abs() < 0.15, "spacing {spacing}");
        // One of them is the design wavelength.
        assert!(rs.iter().any(|r| (r.as_nanometers() - 1310.0).abs() < 1e-3));
    }

    #[test]
    fn length_adjust_shifts_resonance_by_paper_slope() {
        // Paper Fig. 6: +68 nm circumference → +2.33 nm resonance shift.
        let base = Mrr::compute_ring_design().build();
        let adjusted = Mrr::compute_ring_design().length_adjust_nm(68.0).build();
        let r0 = base.resonance_near(nm(1310.0), OperatingPoint::unbiased());
        let r1 = adjusted.resonance_near(nm(1312.5), OperatingPoint::unbiased());
        let shift = r1.as_nanometers() - r0.as_nanometers();
        assert!((shift - 2.33).abs() < 0.05, "shift {shift} nm");
    }

    #[test]
    fn voltage_red_shifts_resonance() {
        let ring = Mrr::compute_ring_design().build();
        let v = Voltage::from_volts(0.5);
        let shifted = ring.resonance_near(nm(1310.5), OperatingPoint::at_voltage(v));
        let expected = 1310.0 + ring.voltage_shift_nm(v);
        assert!(
            (shifted.as_nanometers() - expected).abs() < 5e-3,
            "resonance {shifted} vs expected {expected}"
        );
    }

    #[test]
    fn thermal_drift_red_shifts_resonance() {
        let ring = Mrr::compute_ring_design().build();
        let hot = OperatingPoint::new(Voltage::ZERO, 10.0);
        let shifted = ring.resonance_near(nm(1310.75), hot);
        assert!(
            (shifted.as_nanometers() - (1310.0 + 0.75)).abs() < 0.01,
            "10 K should shift ≈0.75 nm, got {shifted}"
        );
    }

    #[test]
    fn transmissions_conserve_power() {
        let ring = Mrr::compute_ring_design().build();
        for i in 0..200 {
            let wl = nm(1308.0 + i as f64 * 0.02);
            let sum = ring.thru_transmission(wl, OperatingPoint::unbiased())
                + ring.drop_transmission(wl, OperatingPoint::unbiased());
            assert!(
                sum <= 1.0 + 1e-9,
                "passive device gained power at {wl}: {sum}"
            );
        }
    }

    #[test]
    fn adc_ring_is_higher_q_than_compute_ring() {
        let adc = Mrr::adc_ring_design().build();
        let compute = Mrr::compute_ring_design().build();
        assert!(adc.loaded_q(nm(1310.5)) > compute.loaded_q(nm(1310.0)));
        // Roughly the Q class needed for sub-LSB quantisation windows.
        assert!(adc.loaded_q(nm(1310.5)) > 5_000.0);
    }

    #[test]
    fn linewidth_matches_spectrum_width() {
        let ring = Mrr::adc_ring_design().build();
        let fwhm = ring.linewidth_fwhm(nm(1310.5)).as_nanometers();
        let sp = ring.thru_spectrum(nm(1310.2), nm(1310.8), 6001, OperatingPoint::unbiased());
        // Half-max level between the dip floor and the off-resonance top.
        let (_, dip) = sp.minimum();
        let top = sp.values()[0];
        let measured = sp.width_below(0.5 * (dip + top));
        assert!(
            (measured - fwhm).abs() / fwhm < 0.15,
            "analytic {fwhm} vs measured {measured}"
        );
    }

    #[test]
    fn gap_specified_ring_matches_calibrated_one() {
        // Building the compute ring from its published 200 nm gap gives
        // the same device as the spectrally calibrated coupling.
        let by_gap = Mrr::compute_ring_design()
            .coupling_gaps_nm(200.0, 200.0)
            .build();
        let by_cal = Mrr::compute_ring_design().build();
        let wl = nm(1310.15);
        let dt = (by_gap.thru_transmission(wl, OperatingPoint::unbiased())
            - by_cal.thru_transmission(wl, OperatingPoint::unbiased()))
        .abs();
        assert!(dt < 0.05, "gap-specified ring diverges by {dt}");
    }

    #[test]
    #[should_panic(expected = "self-couplings")]
    fn builder_rejects_bad_coupling() {
        let _ = Mrr::builder().self_coupling(1.5, 0.5).build();
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn builder_rejects_bad_radius() {
        let _ = Mrr::builder().radius_um(-1.0).build();
    }
}
