//! Silicon-photonics device models for the GF45SPCLO-class platform.
//!
//! The paper builds everything from five "fabrication-friendly" primitives
//! (§II): waveguides, microring resonators (MRRs), photodiodes, optical
//! power splitters, and passive absorbers. This crate models each of them
//! behaviourally:
//!
//! * [`Mrr`] — an add-drop microring with first-order dispersion, round-trip
//!   loss, pn-junction (plasma-dispersion) tuning and thermo-optic tuning.
//!   Its thru/drop power transfer functions generate the paper's spectral
//!   figures (Figs. 3a, 6, 8) and implement both the pSRAM latch optics and
//!   the multiplier/quantiser rings.
//! * [`Photodiode`] — responsivity + dark current + bandwidth pole.
//! * [`PowerSplitter`] / [`splitter::binary_ladder`] — including the
//!   cascaded binary-scaling ladder of §II-B.
//! * [`Waveguide`] and [`Absorber`] — propagation loss and stray-light
//!   termination.
//! * [`Laser`] and [`FrequencyComb`] — sources with wall-plug accounting.
//! * [`bus`] — WDM propagation of a [`pic_signal::WdmSignal`] past a chain
//!   of rings, which is where inter-channel crosstalk arises.
//!
//! # Example: a notch at the design wavelength
//!
//! ```
//! use pic_photonics::{Mrr, OperatingPoint};
//! use pic_units::Wavelength;
//!
//! let ring = Mrr::compute_ring_design().build();
//! let on_res = ring.thru_transmission(ring.design_wavelength(), OperatingPoint::on_state());
//! let off_res = ring.thru_transmission(
//!     Wavelength::from_nanometers(ring.design_wavelength().as_nanometers() + 1.0),
//!     OperatingPoint::on_state(),
//! );
//! assert!(on_res < 0.05, "deep notch on resonance");
//! assert!(off_res > 0.8, "high transmission off resonance");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod absorber;
pub mod budget;
pub mod bus;
pub mod calib;
pub mod coupler;
mod mrr;
mod mzi;
pub mod noise;
mod pcm;
mod photodiode;
mod source;
pub mod splitter;
pub mod thermal;
mod waveguide;

pub use absorber::Absorber;
pub use budget::LinkBudget;
pub use mrr::{Mrr, MrrBuilder, OperatingPoint};
pub use mzi::Mzi;
pub use noise::NoiseModel;
pub use pcm::PcmCell;
pub use photodiode::{BalancedPhotodiodePair, Photodiode};
pub use source::{FrequencyComb, Laser};
pub use splitter::PowerSplitter;
pub use thermal::HeaterLock;
pub use waveguide::Waveguide;
