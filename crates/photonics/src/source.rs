//! Optical sources: single-wavelength lasers and frequency combs.

use pic_signal::WdmSignal;
use pic_units::{ElectricalPower, OpticalPower, Wavelength};

/// A continuous-wave laser with wall-plug accounting.
///
/// ```
/// use pic_photonics::Laser;
/// use pic_units::{OpticalPower, Wavelength};
///
/// let bias = Laser::new(Wavelength::from_nanometers(1310.0), OpticalPower::from_dbm(-20.0));
/// assert!((bias.wall_plug_draw().as_microwatts() - 43.478).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Laser {
    wavelength: Wavelength,
    power: OpticalPower,
    wall_plug_efficiency: f64,
}

impl Laser {
    /// Creates a laser with the paper's default wall-plug efficiency
    /// ([`pic_units::constants::WALL_PLUG_EFFICIENCY`]).
    #[must_use]
    pub fn new(wavelength: Wavelength, power: OpticalPower) -> Self {
        Laser {
            wavelength,
            power,
            wall_plug_efficiency: pic_units::constants::WALL_PLUG_EFFICIENCY,
        }
    }

    /// Overrides the wall-plug efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not in `(0, 1]`.
    #[must_use]
    pub fn with_wall_plug(mut self, eta: f64) -> Self {
        assert!(eta > 0.0 && eta <= 1.0, "wall-plug efficiency in (0, 1]");
        self.wall_plug_efficiency = eta;
        self
    }

    /// Emission wavelength.
    #[must_use]
    pub fn wavelength(&self) -> Wavelength {
        self.wavelength
    }

    /// Emitted optical power.
    #[must_use]
    pub fn power(&self) -> OpticalPower {
        self.power
    }

    /// Electrical power drawn from the supply.
    #[must_use]
    pub fn wall_plug_draw(&self) -> ElectricalPower {
        self.power.wall_plug_power(self.wall_plug_efficiency)
    }
}

/// An optical frequency comb: equally spaced wavelength channels each
/// carrying the same power — the paper's WDM input source (§II-B cites
/// Feldmann et al. for this).
///
/// ```
/// use pic_photonics::FrequencyComb;
/// use pic_units::{OpticalPower, Wavelength};
///
/// let comb = FrequencyComb::new(
///     Wavelength::from_nanometers(1310.0),
///     2.33,
///     4,
///     OpticalPower::from_milliwatts(1.0),
/// );
/// assert_eq!(comb.wavelengths().len(), 4);
/// let grid = comb.wavelengths();
/// assert!((grid[3].as_nanometers() - 1316.99).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FrequencyComb {
    start: Wavelength,
    spacing_nm: f64,
    lines: usize,
    per_line_power: OpticalPower,
    wall_plug_efficiency: f64,
}

impl FrequencyComb {
    /// Creates a comb of `lines` channels starting at `start`, spaced by
    /// `spacing_nm`, each emitting `per_line_power`.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or `spacing_nm` is not positive.
    #[must_use]
    pub fn new(
        start: Wavelength,
        spacing_nm: f64,
        lines: usize,
        per_line_power: OpticalPower,
    ) -> Self {
        assert!(lines > 0, "comb needs at least one line");
        assert!(spacing_nm > 0.0, "channel spacing must be positive");
        FrequencyComb {
            start,
            spacing_nm,
            lines,
            per_line_power,
            wall_plug_efficiency: pic_units::constants::WALL_PLUG_EFFICIENCY,
        }
    }

    /// The paper's 4-channel compute grid: 1310 nm start, 2.33 nm spacing.
    #[must_use]
    pub fn paper_compute_grid(per_line_power: OpticalPower) -> Self {
        FrequencyComb::new(
            Wavelength::from_nanometers(pic_units::constants::O_BAND_NM),
            2.33,
            4,
            per_line_power,
        )
    }

    /// Channel wavelengths, ascending.
    #[must_use]
    pub fn wavelengths(&self) -> Vec<Wavelength> {
        (0..self.lines)
            .map(|i| {
                Wavelength::from_nanometers(self.start.as_nanometers() + self.spacing_nm * i as f64)
            })
            .collect()
    }

    /// Channel spacing in nanometers.
    #[must_use]
    pub fn spacing_nm(&self) -> f64 {
        self.spacing_nm
    }

    /// Number of comb lines.
    #[must_use]
    pub fn line_count(&self) -> usize {
        self.lines
    }

    /// Power per comb line.
    #[must_use]
    pub fn per_line_power(&self) -> OpticalPower {
        self.per_line_power
    }

    /// A [`WdmSignal`] with each channel at an intensity-encoded fraction
    /// of the per-line power (`values[i] ∈ [0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not have one entry per line or any value is
    /// outside `[0, 1]`.
    #[must_use]
    pub fn encode(&self, values: &[f64]) -> WdmSignal {
        assert_eq!(values.len(), self.lines, "one value per comb line");
        assert!(
            values.iter().all(|v| (0.0..=1.0).contains(v)),
            "intensity-encoded inputs must be in [0, 1]"
        );
        let powers = values.iter().map(|&v| self.per_line_power * v).collect();
        WdmSignal::with_powers(self.wavelengths(), powers)
    }

    /// A signal with every channel at full power.
    #[must_use]
    pub fn full_power_signal(&self) -> WdmSignal {
        self.encode(&vec![1.0; self.lines])
    }

    /// Total electrical power drawn by the comb source.
    #[must_use]
    pub fn wall_plug_draw(&self) -> ElectricalPower {
        (self.per_line_power * self.lines as f64).wall_plug_power(self.wall_plug_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comb_grid_is_uniform() {
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let grid = comb.wavelengths();
        for w in grid.windows(2) {
            let d = w[1].as_nanometers() - w[0].as_nanometers();
            assert!((d - 2.33).abs() < 1e-12);
        }
    }

    #[test]
    fn encode_scales_power() {
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let sig = comb.encode(&[0.0, 0.25, 0.5, 1.0]);
        assert!((sig.power(1).as_milliwatts() - 0.25).abs() < 1e-12);
        assert!((sig.total_power().as_milliwatts() - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn encode_rejects_overrange() {
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        let _ = comb.encode(&[0.0, 0.25, 0.5, 1.5]);
    }

    #[test]
    fn laser_wall_plug_uses_efficiency() {
        let l = Laser::new(
            Wavelength::from_nanometers(1310.0),
            OpticalPower::from_milliwatts(1.0),
        )
        .with_wall_plug(0.5);
        assert!((l.wall_plug_draw().as_milliwatts() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comb_wall_plug_sums_lines() {
        let comb = FrequencyComb::paper_compute_grid(OpticalPower::from_milliwatts(1.0));
        // 4 mW optical / 0.23
        assert!((comb.wall_plug_draw().as_milliwatts() - 17.391).abs() < 0.01);
    }
}
