//! Thermal drift and integrated-heater stabilisation.
//!
//! MRRs are "susceptible to thermal and environmental fluctuations, which
//! can be effectively mitigated through thermal tuning using integrated
//! heaters" (paper §I, refs \[37\], \[38\]). This module provides the
//! mitigation: a dither-probe lock that measures the resonance detuning
//! through the transmission asymmetry at `λ₀ ± δ` and servos an integrated
//! heater to cancel ambient drift.
//!
//! The heater can only add heat, so it idles at a bias offset and backs
//! off when the environment warms — the standard operating strategy.

use crate::{Mrr, OperatingPoint};
use pic_units::{Voltage, Wavelength};

/// An integrated-heater resonance lock on one ring.
#[derive(Debug, Clone)]
pub struct HeaterLock {
    ring: Mrr,
    target: Wavelength,
    probe_offset_nm: f64,
    /// Integral gain: kelvin of heater adjustment per unit of asymmetry.
    gain_k: f64,
    heater_k: f64,
    bias_k: f64,
    max_heater_k: f64,
}

impl HeaterLock {
    /// Creates a lock around `ring`, holding its resonance at `target`.
    ///
    /// `bias_k` is the heater's idle operating point; the servo can move
    /// the heater anywhere in `[0, 2·bias_k]`, so ambient swings up to
    /// ±`bias_k·(dλ/dK)` are correctable.
    ///
    /// # Panics
    ///
    /// Panics if `bias_k` is not positive.
    #[must_use]
    pub fn new(ring: Mrr, target: Wavelength, bias_k: f64) -> Self {
        assert!(bias_k > 0.0, "heater bias must be positive");
        // Probe on the resonance flanks: half a linewidth out.
        let probe_offset_nm = 0.5 * ring.linewidth_fwhm(target).as_nanometers();
        HeaterLock {
            ring,
            target,
            probe_offset_nm,
            gain_k: 2.0,
            heater_k: bias_k,
            bias_k,
            max_heater_k: 2.0 * bias_k,
        }
    }

    /// Present heater setting above ambient, K.
    #[must_use]
    pub fn heater_k(&self) -> f64 {
        self.heater_k
    }

    /// The heater's idle bias, K.
    #[must_use]
    pub fn bias_k(&self) -> f64 {
        self.bias_k
    }

    /// The locked ring.
    #[must_use]
    pub fn ring(&self) -> &Mrr {
        &self.ring
    }

    /// The operating point the ring actually sees: junction voltage `v`,
    /// ambient drift plus heater, *referred to the calibration point* (the
    /// heater bias is part of the calibration, so it is subtracted).
    #[must_use]
    pub fn operating_point(&self, ambient_drift_k: f64, v: Voltage) -> OperatingPoint {
        OperatingPoint::new(v, ambient_drift_k + self.heater_k - self.bias_k)
    }

    /// The dither-probe error signal at the present state: transmission
    /// asymmetry `T(λ₀+δ) − T(λ₀−δ)`, an odd, sign-resolved function of
    /// the resonance detuning near lock.
    #[must_use]
    pub fn error_signal(&self, ambient_drift_k: f64) -> f64 {
        let op = self.operating_point(ambient_drift_k, Voltage::ZERO);
        let hi = self.ring.thru_transmission(
            Wavelength::from_nanometers(self.target.as_nanometers() + self.probe_offset_nm),
            op,
        );
        let lo = self.ring.thru_transmission(
            Wavelength::from_nanometers(self.target.as_nanometers() - self.probe_offset_nm),
            op,
        );
        hi - lo
    }

    /// One servo iteration against the present ambient drift. Returns the
    /// residual resonance detuning in nanometers.
    pub fn step(&mut self, ambient_drift_k: f64) -> f64 {
        let err = self.error_signal(ambient_drift_k);
        // Resonance red of target → flank asymmetry negative → back the
        // heater off; blue → add heat.
        self.heater_k = (self.heater_k + self.gain_k * err).clamp(0.0, self.max_heater_k);
        self.residual_detuning_nm(ambient_drift_k)
    }

    /// Runs the servo until the residual detuning settles (or `max_iters`
    /// expires); returns the final residual in nanometers.
    pub fn lock(&mut self, ambient_drift_k: f64, max_iters: usize) -> f64 {
        let mut residual = self.residual_detuning_nm(ambient_drift_k);
        for _ in 0..max_iters {
            residual = self.step(ambient_drift_k);
            if residual.abs() < 1e-4 {
                break;
            }
        }
        residual
    }

    /// Signed detuning of the ring's resonance from the target, nm.
    #[must_use]
    pub fn residual_detuning_nm(&self, ambient_drift_k: f64) -> f64 {
        let op = self.operating_point(ambient_drift_k, Voltage::ZERO);
        let res = self.ring.resonance_near(self.target, op);
        res.as_nanometers() - self.target.as_nanometers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locked() -> HeaterLock {
        // Ring calibrated resonant at 1310 nm *with* the heater bias: the
        // builder's thermal reference is the biased state, so we build at
        // the design point and treat heater==bias as zero offset.
        let ring = Mrr::compute_ring_design().build();
        HeaterLock::new(ring, Wavelength::from_nanometers(1310.0), 10.0)
    }

    #[test]
    fn no_drift_means_no_correction() {
        let mut lock = locked();
        let residual = lock.lock(0.0, 50);
        assert!(
            residual.abs() < 1e-3,
            "residual {residual} nm at zero drift"
        );
        assert!((lock.heater_k() - lock.bias_k()).abs() < 0.5);
    }

    #[test]
    fn warming_environment_backs_the_heater_off() {
        let mut lock = locked();
        let residual = lock.lock(5.0, 200);
        assert!(residual.abs() < 5e-3, "residual {residual} nm at +5 K");
        assert!(
            lock.heater_k() < lock.bias_k(),
            "heater must shed power when ambient warms"
        );
    }

    #[test]
    fn cooling_environment_adds_heat() {
        let mut lock = locked();
        let residual = lock.lock(-5.0, 200);
        assert!(residual.abs() < 5e-3, "residual {residual} nm at −5 K");
        assert!(lock.heater_k() > lock.bias_k());
    }

    #[test]
    fn unlocked_drift_is_much_worse_than_locked() {
        let ring = Mrr::compute_ring_design().build();
        let unlocked = {
            let op = OperatingPoint::new(Voltage::ZERO, 5.0);
            let res = ring.resonance_near(Wavelength::from_nanometers(1310.4), op);
            (res.as_nanometers() - 1310.0).abs()
        };
        let mut lock = locked();
        let locked_res = lock.lock(5.0, 200).abs();
        assert!(
            unlocked > 50.0 * locked_res.max(1e-6),
            "lock gains less than 50×: unlocked {unlocked} vs locked {locked_res}"
        );
    }

    #[test]
    fn drift_beyond_capture_range_loses_lock() {
        let mut lock = locked();
        // +30 K pushes the resonance ≈2.3 nm away — far outside the
        // half-linewidth dither probes, so the error signal vanishes and
        // the servo cannot re-acquire: the classic capture-range limit.
        let residual = lock.lock(30.0, 300);
        assert!(residual > 0.5, "uncorrectable drift must remain visible");
        assert!(
            lock.error_signal(30.0).abs() < 0.05,
            "outside capture range the dither error is flat"
        );
    }

    #[test]
    fn error_signal_is_sign_resolved() {
        let lock = locked();
        assert!(lock.error_signal(2.0) < 0.0, "hot → negative error");
        assert!(lock.error_signal(-2.0) > 0.0, "cold → positive error");
    }
}
