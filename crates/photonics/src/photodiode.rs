//! Photodiode and balanced-pair models.

use pic_units::{Current, Frequency, OpticalPower};

/// A broadband photodiode: responsivity, dark current and an opto-electrical
/// bandwidth pole.
///
/// The paper relies on the PDs' broadband response (write light at a
/// different wavelength still detects, §II-A) and on their high bandwidth
/// (the eoADC, not the PD, limits core speed, §IV-D).
///
/// # Examples
///
/// ```
/// use pic_photonics::Photodiode;
/// use pic_units::OpticalPower;
///
/// let pd = Photodiode::gf45spclo();
/// let i = pd.photocurrent(OpticalPower::from_microwatts(10.0));
/// assert!(i.as_microamps() > 8.9 && i.as_microamps() < 9.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Photodiode {
    responsivity_a_per_w: f64,
    dark_current: Current,
    bandwidth: Frequency,
}

impl Photodiode {
    /// Creates a photodiode.
    ///
    /// # Panics
    ///
    /// Panics if `responsivity_a_per_w` is not positive.
    #[must_use]
    pub fn new(responsivity_a_per_w: f64, dark_current: Current, bandwidth: Frequency) -> Self {
        assert!(
            responsivity_a_per_w > 0.0,
            "responsivity must be positive, got {responsivity_a_per_w}"
        );
        Photodiode {
            responsivity_a_per_w,
            dark_current,
            bandwidth,
        }
    }

    /// The platform-calibrated photodiode (see [`crate::calib`]).
    #[must_use]
    pub fn gf45spclo() -> Self {
        Photodiode::new(
            crate::calib::PHOTODIODE_RESPONSIVITY_A_PER_W,
            Current::from_amps(crate::calib::PHOTODIODE_DARK_CURRENT_A),
            Frequency::from_gigahertz(crate::calib::PHOTODIODE_BANDWIDTH_GHZ),
        )
    }

    /// Responsivity in A/W.
    #[must_use]
    pub fn responsivity(&self) -> f64 {
        self.responsivity_a_per_w
    }

    /// Dark current.
    #[must_use]
    pub fn dark_current(&self) -> Current {
        self.dark_current
    }

    /// Opto-electrical bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> Frequency {
        self.bandwidth
    }

    /// Steady-state photocurrent for the given incident power (includes the
    /// dark-current floor).
    #[must_use]
    pub fn photocurrent(&self, power: OpticalPower) -> Current {
        power.photocurrent(self.responsivity_a_per_w) + self.dark_current
    }

    /// First-order low-pass step applied to a current that is slewing from
    /// `present` toward the steady-state response of `power`, over `dt_s`
    /// seconds — the PD's bandwidth pole in transient co-simulation.
    #[must_use]
    pub fn filtered_step(&self, present: Current, power: OpticalPower, dt_s: f64) -> Current {
        let target = self.photocurrent(power);
        let alpha = 1.0 - (-dt_s * self.bandwidth.angular()).exp();
        present + (target - present) * alpha
    }
}

impl Default for Photodiode {
    fn default() -> Self {
        Photodiode::gf45spclo()
    }
}

/// Two photodiodes in series between the rails, output taken at the
/// midpoint — the paper's storage-node arrangement (pSRAM, §II-A) and the
/// eoADC's opto-electric thresholding block (§II-C).
///
/// Positive [`BalancedPhotodiodePair::net_current`] charges the midpoint
/// node toward VDD, negative discharges it toward ground.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct BalancedPhotodiodePair {
    /// PD between VDD and the midpoint (pull-up when illuminated).
    pub pull_up: Photodiode,
    /// PD between the midpoint and ground (pull-down when illuminated).
    pub pull_down: Photodiode,
}

impl BalancedPhotodiodePair {
    /// A matched pair of platform photodiodes.
    #[must_use]
    pub fn matched() -> Self {
        BalancedPhotodiodePair::default()
    }

    /// Net midpoint current for the given illuminations: pull-up minus
    /// pull-down photocurrent.
    #[must_use]
    pub fn net_current(&self, up_power: OpticalPower, down_power: OpticalPower) -> Current {
        self.pull_up.photocurrent(up_power) - self.pull_down.photocurrent(down_power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photocurrent_includes_dark_floor() {
        let pd = Photodiode::gf45spclo();
        let dark = pd.photocurrent(OpticalPower::ZERO);
        assert!((dark.as_amps() - 10e-9).abs() < 1e-15);
    }

    #[test]
    fn filtered_step_converges() {
        let pd = Photodiode::gf45spclo();
        let target = pd.photocurrent(OpticalPower::from_microwatts(100.0));
        let mut i = Current::ZERO;
        // 10 ps ≫ 1/(2π·50 GHz) ≈ 3.2 ps, stepped finely.
        for _ in 0..100 {
            i = pd.filtered_step(i, OpticalPower::from_microwatts(100.0), 0.1e-12);
        }
        assert!((i.as_amps() - target.as_amps()).abs() / target.as_amps() < 0.05);
    }

    #[test]
    fn filtered_step_is_causal_slew() {
        let pd = Photodiode::gf45spclo();
        let i1 = pd.filtered_step(Current::ZERO, OpticalPower::from_microwatts(100.0), 0.1e-12);
        let steady = pd.photocurrent(OpticalPower::from_microwatts(100.0));
        assert!(i1.as_amps() > 0.0 && i1.as_amps() < steady.as_amps());
    }

    #[test]
    fn balanced_pair_sign_convention() {
        let pair = BalancedPhotodiodePair::matched();
        let up = pair.net_current(OpticalPower::from_microwatts(10.0), OpticalPower::ZERO);
        assert!(up.as_amps() > 0.0, "illuminating pull-up charges the node");
        let down = pair.net_current(OpticalPower::ZERO, OpticalPower::from_microwatts(10.0));
        assert!(down.as_amps() < 0.0, "illuminating pull-down discharges");
    }

    #[test]
    #[should_panic(expected = "responsivity")]
    fn rejects_nonpositive_responsivity() {
        let _ = Photodiode::new(0.0, Current::ZERO, Frequency::from_gigahertz(50.0));
    }
}
