//! Mach–Zehnder interferometer weight element.
//!
//! The paper's §I positions MRR cores against MZI meshes: MZIs "allow
//! rapid weight updates [but] their large device area limits scalability".
//! This model supplies the device so that trade-off can be computed
//! instead of asserted: a thermo-/electro-optically phase-tuned 2×2 MZI
//! used as an amplitude weight.

use pic_units::{OpticalPower, Voltage};

/// A 2×2 MZI with ideal 50:50 couplers and a phase shifter of efficiency
/// `rad_per_volt` in one arm; used single-input/single-output as an
/// amplitude weight `T = cos²(φ/2)`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mzi {
    rad_per_volt: f64,
    insertion_loss: f64,
    length_um: f64,
    width_um: f64,
}

impl Mzi {
    /// Creates an MZI weight element.
    ///
    /// # Panics
    ///
    /// Panics if the phase efficiency or footprint is not positive, or
    /// the insertion loss leaves `[0, 1)`.
    #[must_use]
    pub fn new(rad_per_volt: f64, insertion_loss: f64, length_um: f64, width_um: f64) -> Self {
        assert!(rad_per_volt > 0.0, "phase efficiency must be positive");
        assert!(
            (0.0..1.0).contains(&insertion_loss),
            "insertion loss must be in [0, 1)"
        );
        assert!(
            length_um > 0.0 && width_um > 0.0,
            "footprint must be positive"
        );
        Mzi {
            rad_per_volt,
            insertion_loss,
            length_um,
            width_um,
        }
    }

    /// A typical silicon thermo-optic MZI weight: π at ~2 V, 0.5 dB loss,
    /// 300 µm × 50 µm (the device-class the MZI-mesh literature uses).
    #[must_use]
    pub fn silicon_thermo_optic() -> Self {
        Mzi::new(std::f64::consts::PI / 2.0, 0.109, 300.0, 50.0)
    }

    /// Power transmission at drive voltage `v`: `(1 − IL)·cos²(φ/2)` with
    /// `φ = rad_per_volt · v`.
    #[must_use]
    pub fn transmission(&self, v: Voltage) -> f64 {
        let phi = self.rad_per_volt * v.as_volts();
        (1.0 - self.insertion_loss) * (0.5 * phi).cos().powi(2)
    }

    /// Output power for `input` at drive `v`.
    #[must_use]
    pub fn weight(&self, input: OpticalPower, v: Voltage) -> OpticalPower {
        input * self.transmission(v)
    }

    /// Drive voltage that programs transmission fraction `t ∈ [0, 1]` of
    /// the maximum.
    ///
    /// # Panics
    ///
    /// Panics if `t` leaves `[0, 1]`.
    #[must_use]
    pub fn voltage_for(&self, t: f64) -> Voltage {
        assert!((0.0..=1.0).contains(&t), "weight fraction in [0, 1]");
        let phi = 2.0 * t.sqrt().acos();
        Voltage::from_volts(phi / self.rad_per_volt)
    }

    /// Device footprint, µm².
    #[must_use]
    pub fn footprint_um2(&self) -> f64 {
        self.length_um * self.width_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_volts_is_maximum_transmission() {
        let mzi = Mzi::silicon_thermo_optic();
        let t0 = mzi.transmission(Voltage::ZERO);
        assert!((t0 - (1.0 - 0.109)).abs() < 1e-12);
        assert!(mzi.transmission(Voltage::from_volts(1.0)) < t0);
    }

    #[test]
    fn pi_phase_extinguishes() {
        let mzi = Mzi::silicon_thermo_optic();
        // π at 2 V for this device.
        let t = mzi.transmission(Voltage::from_volts(2.0));
        assert!(t < 1e-12, "π drive must extinguish: {t}");
    }

    #[test]
    fn voltage_for_round_trips() {
        let mzi = Mzi::silicon_thermo_optic();
        for t in [0.0, 0.25, 0.5, 0.9, 1.0] {
            let v = mzi.voltage_for(t);
            let measured = mzi.transmission(v) / (1.0 - 0.109);
            assert!((measured - t).abs() < 1e-9, "t={t} gave {measured}");
        }
    }

    #[test]
    fn mzi_dwarfs_the_microring() {
        let mzi = Mzi::silicon_thermo_optic();
        let ring_footprint =
            std::f64::consts::PI * (crate::calib::COMPUTE_RING_RADIUS_UM + 5.0).powi(2);
        assert!(
            mzi.footprint_um2() > 10.0 * ring_footprint,
            "the §I area argument: MZI {} µm² vs ring ~{} µm²",
            mzi.footprint_um2(),
            ring_footprint
        );
    }

    #[test]
    #[should_panic(expected = "insertion loss")]
    fn rejects_gain() {
        let _ = Mzi::new(1.0, -0.1, 100.0, 50.0);
    }
}
