//! Optical power splitters, including the binary-scaling ladder of §II-B.

use pic_units::{OpticalPower, Ratio};

/// A 1×2 optical power splitter with a programmable split ratio and excess
/// loss.
///
/// # Examples
///
/// ```
/// use pic_photonics::PowerSplitter;
/// use pic_units::OpticalPower;
///
/// let ps = PowerSplitter::balanced();
/// let (a, b) = ps.split(OpticalPower::from_milliwatts(1.0));
/// assert!((a.as_milliwatts() - 0.5).abs() < 1e-9);
/// assert!((b.as_milliwatts() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerSplitter {
    tap_fraction: f64,
    excess_loss: Ratio,
}

impl PowerSplitter {
    /// Creates a splitter directing `tap_fraction` of the input power to the
    /// first output, with the given excess (insertion) loss applied to both.
    ///
    /// # Panics
    ///
    /// Panics if `tap_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn new(tap_fraction: f64, excess_loss: Ratio) -> Self {
        assert!(
            (0.0..=1.0).contains(&tap_fraction),
            "tap fraction must be in [0, 1], got {tap_fraction}"
        );
        PowerSplitter {
            tap_fraction,
            excess_loss: excess_loss.clamp_passive(),
        }
    }

    /// An ideal lossless 50:50 splitter.
    #[must_use]
    pub fn balanced() -> Self {
        PowerSplitter::new(0.5, Ratio::UNITY)
    }

    /// Fraction of power routed to the first output.
    #[must_use]
    pub fn tap_fraction(&self) -> f64 {
        self.tap_fraction
    }

    /// Splits the input into `(tap, remainder)`.
    #[must_use]
    pub fn split(&self, input: OpticalPower) -> (OpticalPower, OpticalPower) {
        let after_loss = input.attenuate(self.excess_loss);
        (
            after_loss * self.tap_fraction,
            after_loss * (1.0 - self.tap_fraction),
        )
    }
}

/// Power fractions produced by the paper's cascade of 50:50 splitters that
/// feeds an n-bit multiplier column (§II-B): branch `j` (MSB first) carries
/// `IN/2^(j+1)`, and the final `IN/2^n` remainder is dumped into an
/// absorber.
///
/// Returned MSB-first: `[1/2, 1/4, …, 1/2^n]`, plus the absorbed remainder.
///
/// ```
/// use pic_photonics::splitter::binary_ladder;
/// let (branches, rem) = binary_ladder(3);
/// assert_eq!(branches, vec![0.5, 0.25, 0.125]);
/// assert!((rem - 0.125).abs() < 1e-15);
/// ```
///
/// # Panics
///
/// Panics if `bits` is zero.
#[must_use]
pub fn binary_ladder(bits: u32) -> (Vec<f64>, f64) {
    assert!(bits > 0, "a weight needs at least one bit");
    let branches: Vec<f64> = (1..=bits).map(|j| 0.5f64.powi(j as i32)).collect();
    let remainder = 0.5f64.powi(bits as i32);
    (branches, remainder)
}

/// Splits one input power across the binary ladder, returning the per-branch
/// powers MSB-first (the absorbed remainder is dropped).
#[must_use]
pub fn split_binary(input: OpticalPower, bits: u32) -> Vec<OpticalPower> {
    let (fractions, _) = binary_ladder(bits);
    fractions.into_iter().map(|f| input * f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_conserves_power() {
        for bits in 1..=8 {
            let (branches, rem) = binary_ladder(bits);
            let total: f64 = branches.iter().sum::<f64>() + rem;
            assert!((total - 1.0).abs() < 1e-12, "{bits}-bit ladder leaks power");
        }
    }

    #[test]
    fn ladder_is_binary_weighted() {
        let (branches, _) = binary_ladder(4);
        for w in branches.windows(2) {
            assert!((w[0] / w[1] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn split_binary_scales_input() {
        let parts = split_binary(OpticalPower::from_milliwatts(1.0), 3);
        assert!((parts[0].as_milliwatts() - 0.5).abs() < 1e-12);
        assert!((parts[2].as_milliwatts() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn lossy_splitter_attenuates() {
        let ps = PowerSplitter::new(0.5, Ratio::from_db(-0.5));
        let (a, b) = ps.split(OpticalPower::from_milliwatts(1.0));
        let total = a.as_milliwatts() + b.as_milliwatts();
        assert!(total < 1.0 && total > 0.85);
    }

    #[test]
    #[should_panic(expected = "tap fraction")]
    fn rejects_bad_tap() {
        let _ = PowerSplitter::new(1.2, Ratio::UNITY);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn rejects_zero_bits() {
        let _ = binary_ladder(0);
    }
}
