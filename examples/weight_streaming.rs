//! Big-data weight streaming — the paper's second contribution: 20 GHz
//! pSRAM updates let the core process matrices far larger than the
//! physical array by tiling weights through it.
//!
//! A 64×64 quantised matrix is multiplied by an input vector on the 16×16
//! core: 16 weight tiles are streamed through the photonic SRAM with full
//! optical write transients, partial products accumulated digitally.
//!
//! Run with: `cargo run --release --example weight_streaming`

use photonic_tensor_core::tensor::{quant, TensorCore, TensorCoreConfig};
use photonic_tensor_core::units::Energy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BIG: usize = 64;
const TILE: usize = 16;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let config = TensorCoreConfig::paper();
    let mut core = TensorCore::new(config);

    // A large random weight matrix and input vector.
    let big_w: Vec<Vec<f64>> = (0..BIG)
        .map(|_| (0..BIG).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let x: Vec<f64> = (0..BIG).map(|_| rng.gen_range(0.0..1.0)).collect();

    println!(
        "streaming a {BIG}×{BIG} matrix through the {TILE}×{TILE} core \
         ({} tiles)…",
        (BIG / TILE) * (BIG / TILE)
    );

    let mut y_analog = vec![0.0f64; BIG];
    let mut total_energy = Energy::ZERO;
    let mut total_flips = 0usize;
    let mut tiles = 0usize;

    for row_tile in 0..BIG / TILE {
        for col_tile in 0..BIG / TILE {
            // Quantise and stream this tile into the pSRAM through the
            // real 20 GHz optical write path.
            let codes: Vec<Vec<u32>> = (0..TILE)
                .map(|r| {
                    (0..TILE)
                        .map(|c| {
                            quant::quantize_unsigned(
                                big_w[row_tile * TILE + r][col_tile * TILE + c],
                                config.weight_bits,
                            )
                        })
                        .collect()
                })
                .collect();
            let (energy, flips) = core.write_weights_transient(&codes);
            total_energy += energy;
            total_flips += flips;
            tiles += 1;

            // Partial product on the analog path, accumulated per row.
            let x_tile = &x[col_tile * TILE..(col_tile + 1) * TILE];
            let partial = core.matvec_analog(x_tile);
            for (r, p) in partial.iter().enumerate() {
                y_analog[row_tile * TILE + r] += p;
            }
        }
    }

    // Reference: float matmul with the same quantised weights.
    let max_code = ((1u32 << config.weight_bits) - 1) as f64;
    let y_ref: Vec<f64> = (0..BIG)
        .map(|r| {
            (0..BIG)
                .map(|c| {
                    let q =
                        quant::quantize_unsigned(big_w[r][c], config.weight_bits) as f64 / max_code;
                    q * x[c]
                })
                .sum::<f64>()
                / TILE as f64 // matvec_analog normalises per tile width
        })
        .collect();

    let rel_err: f64 = y_analog
        .iter()
        .zip(&y_ref)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / y_ref.iter().sum::<f64>();

    let update_window = config.psram.update_rate.period().as_seconds() * (total_flips as f64);
    println!(" tiles streamed      : {tiles}");
    println!(" bitcell flips       : {total_flips}");
    println!(
        " write energy        : {:.2} pJ ({:.3} pJ/flip)",
        total_energy.as_picojoules(),
        total_energy.as_picojoules() / total_flips as f64
    );
    println!(
        " write wall-time     : {:.2} ns at the 20 GHz update rate",
        update_window * 1e9
    );
    println!(
        " mean relative error : {:.2} % (analog path vs quantised float)",
        rel_err * 100.0
    );

    assert!(rel_err < 0.1, "streamed result drifted from the reference");
}
