//! In-situ training — the use case the paper's 20 GHz weight updates
//! enable ("suitable for large-scale datasets and in-situ training", §V).
//!
//! A perceptron is trained *through the photonic forward pass*: every
//! prediction runs on the mixed-signal core (WDM multiply → photodiode
//! summation → eoADC), the digital host computes the weight update, and
//! the new weights stream back into the pSRAM through the real optical
//! write path. The write energy and time of the whole training run are
//! metered.
//!
//! Run with: `cargo run --release --example in_situ_training`

use photonic_tensor_core::tensor::{quant, TensorCore, TensorCoreConfig};
use photonic_tensor_core::units::Energy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 8;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // Task: distinguish "left-heavy" from "right-heavy" 8-element
    // patterns with a single photonic row (non-negative weights; the
    // decision threshold supplies the signed part).
    let sample = |rng: &mut StdRng| -> (Vec<f64>, bool) {
        let left_heavy = rng.gen_bool(0.5);
        let x: Vec<f64> = (0..DIM)
            .map(|i| {
                let base: f64 = if (i < DIM / 2) == left_heavy {
                    0.8
                } else {
                    0.2
                };
                (base + rng.gen_range(-0.15..0.15)).clamp(0.0, 1.0)
            })
            .collect();
        (x, left_heavy)
    };

    let config = TensorCoreConfig {
        rows: 2, // one detector per class
        cols: DIM,
        ..TensorCoreConfig::paper()
    };
    let mut core = TensorCore::new(config);
    core.set_readout_gain(2.0);

    // Float shadow weights (what the host optimiser owns); the core holds
    // their 3-bit quantisation.
    let mut w = vec![vec![0.5f64; DIM]; 2];
    let quantized = |w: &Vec<Vec<f64>>| quant::quantize_matrix(w, config.weight_bits);
    core.load_weight_codes(&quantized(&w));

    let mut write_energy = Energy::ZERO;
    let mut writes = 0usize;
    let mut history = Vec::new();

    for epoch in 0..12 {
        let mut correct = 0;
        for _ in 0..50 {
            let (x, left) = sample(&mut rng);
            // Photonic forward pass.
            let codes = core.matvec(&x);
            let predict_left = codes[0] > codes[1];
            if predict_left == left {
                correct += 1;
            }

            // Host-side perceptron update on the shadow weights.
            let (up, down) = if left { (0, 1) } else { (1, 0) };
            if predict_left != left {
                for i in 0..DIM {
                    w[up][i] = (w[up][i] + 0.10 * x[i]).clamp(0.0, 1.0);
                    w[down][i] = (w[down][i] - 0.10 * x[i]).clamp(0.0, 1.0);
                }
                // Stream the changed weights into the pSRAM via the
                // actual 20 GHz optical write transient.
                let (e, flips) = core.write_weights_transient(&quantized(&w));
                write_energy += e;
                writes += flips;
            }
        }
        let acc = correct as f64 / 50.0;
        history.push(acc);
        println!("epoch {epoch:>2}: accuracy {:.0} %", acc * 100.0);
    }

    let final_acc = *history.last().expect("non-empty");
    let first_acc = history[0];
    println!("\n training summary:");
    println!(
        "   accuracy: {:.0} % → {:.0} %",
        first_acc * 100.0,
        final_acc * 100.0
    );
    println!("   pSRAM bit flips during training: {writes}");
    println!(
        "   total weight-write energy: {:.2} pJ ({:.3} pJ/flip)",
        write_energy.as_picojoules(),
        write_energy.as_picojoules() / writes.max(1) as f64
    );
    println!(
        "   weight-write wall time at 20 GHz: {:.2} ns",
        writes as f64 * 0.05
    );

    assert!(
        final_acc >= 0.9,
        "training through the photonic loop failed"
    );
    assert!(final_acc > first_acc - 0.05, "accuracy regressed");
}
