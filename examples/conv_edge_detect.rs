//! Convolutional edge detection on the photonic tensor core — the CNN
//! workload class the paper's WDM approach targets (its convolution
//! lineage is Feldmann et al., ref. [30]).
//!
//! Two signed 3×3 kernels (horizontal/vertical gradients) run over a
//! synthetic image by im2col on the core: one eoADC conversion per output
//! pixel per differential row. The feature maps are rendered as ASCII.
//!
//! Run with: `cargo run --release --example conv_edge_detect`

use photonic_tensor_core::tensor::{Conv2d, Conv2dSpec, TensorCoreConfig};

const SIZE: usize = 16;

/// A dark square on a bright field — crisp edges in both directions.
fn synthetic_image() -> Vec<Vec<Vec<f64>>> {
    let img = (0..SIZE)
        .map(|y| {
            (0..SIZE)
                .map(|x| {
                    let inside = (4..12).contains(&y) && (4..12).contains(&x);
                    if inside {
                        0.15
                    } else {
                        0.85
                    }
                })
                .collect()
        })
        .collect();
    vec![img]
}

fn render(name: &str, map: &[Vec<f64>]) {
    let peak = map
        .iter()
        .flatten()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-9);
    println!("\n {name} (peak |response| {peak:.3}):");
    for row in map {
        let line: String = row
            .iter()
            .map(|&v| {
                let mag = (v.abs() / peak * 4.0).round() as usize;
                [' ', '.', ':', 'o', '#'][mag.min(4)]
            })
            .collect();
        println!("   |{line}|");
    }
}

fn main() {
    let spec = Conv2dSpec {
        out_channels: 2,
        in_channels: 1,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
    };
    let horiz = vec![-0.5, -1.0, -0.5, 0.0, 0.0, 0.0, 0.5, 1.0, 0.5];
    let vert = vec![-0.5, 0.0, 0.5, -1.0, 0.0, 1.0, -0.5, 0.0, 0.5];
    let conv = Conv2d::new(spec, &[horiz, vert], TensorCoreConfig::paper());

    let image = synthetic_image();
    let (oh, ow) = conv.output_size(SIZE, SIZE);
    println!(
        "photonic conv layer: {}×{} kernels × {} channels on a {SIZE}×{SIZE} image → {oh}×{ow} maps",
        spec.kernel_h, spec.kernel_w, spec.out_channels
    );
    println!(
        " core: {} physical rows × {} padded patch inputs, {} eoADC conversions/image",
        conv.core().config().rows,
        conv.core().config().cols,
        conv.conversions_per_image(SIZE, SIZE)
    );

    let maps = conv.forward(&image);
    render("horizontal-edge map", &maps[0]);
    render("vertical-edge map", &maps[1]);

    // Sanity: the horizontal detector fires on the square's top/bottom
    // rows, the vertical one on its left/right columns.
    let h_top = maps[0][2][7].abs(); // above the square's top edge (y≈4)
    let v_left = maps[1][7][2].abs(); // left of the square's left edge
    let flat = maps[0][7][7].abs(); // dead centre, flat region
    println!("\n responses: h@top-edge {h_top:.3}, v@left-edge {v_left:.3}, flat {flat:.3}");
    assert!(h_top > 3.0 * flat.max(0.02), "horizontal edge not detected");
    assert!(v_left > 3.0 * flat.max(0.02), "vertical edge not detected");
}
