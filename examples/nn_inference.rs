//! Neural-network inference on the photonic tensor core — the workload
//! class the paper's introduction motivates.
//!
//! Trains a tiny linear classifier (perceptron rule, plain Rust, offline)
//! on a synthetic 16-dimensional pattern task, quantises the weights to
//! the core's 3-bit precision, and compares float inference against the
//! photonic mixed-signal pipeline (WDM multiply → PD summation → eoADC).
//!
//! Run with: `cargo run --example nn_inference`

use photonic_tensor_core::tensor::nn::DenseLayer;
use photonic_tensor_core::tensor::TensorCoreConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 16;
const CLASSES: usize = 4;

/// Four class prototypes: bumps centred on different quarters of the
/// 16-element input vector.
fn prototype(class: usize) -> Vec<f64> {
    (0..DIM)
        .map(|i| {
            let center = class * 4 + 2;
            let d = i as f64 - center as f64;
            (-d * d / 4.0).exp()
        })
        .collect()
}

fn sample(class: usize, noise: f64, rng: &mut StdRng) -> Vec<f64> {
    prototype(class)
        .into_iter()
        .map(|v| (v + rng.gen_range(-noise..noise)).clamp(0.0, 1.0))
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Offline training: one-vs-rest perceptron with unit-norm rows.
    let mut w = vec![vec![0.0f64; DIM]; CLASSES];
    for _ in 0..400 {
        let class = rng.gen_range(0..CLASSES);
        let x = sample(class, 0.15, &mut rng);
        for (c, row) in w.iter_mut().enumerate() {
            let y: f64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
            let target = if c == class { 1.0 } else { 0.0 };
            let err = target - y.clamp(0.0, 1.0);
            for (wi, xi) in row.iter_mut().zip(&x) {
                *wi = (*wi + 0.05 * err * xi).clamp(-1.0, 1.0);
            }
        }
    }

    // Deploy on the photonic core: 16 inputs → four 1×4 macros per row,
    // differential rows for the signed weights.
    let base = TensorCoreConfig {
        cols: DIM,
        ..TensorCoreConfig::paper()
    };
    let layer = DenseLayer::new(&w, base);
    println!(
        "photonic dense layer: {} inputs → {} classes ({} physical rows, {} pSRAM bitcells)",
        layer.input_count(),
        layer.output_count(),
        layer.core().config().rows,
        layer.core().config().bitcell_count()
    );

    // Evaluate float vs photonic on a held-out set.
    let float_classify = |x: &[f64]| -> usize {
        (0..CLASSES)
            .map(|c| w[c].iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .0
    };

    let trials = 200;
    let (mut float_ok, mut photonic_ok, mut agree) = (0, 0, 0);
    for _ in 0..trials {
        let class = rng.gen_range(0..CLASSES);
        let x = sample(class, 0.15, &mut rng);
        let f = float_classify(&x);
        let p = layer.classify(&x);
        float_ok += usize::from(f == class);
        photonic_ok += usize::from(p == class);
        agree += usize::from(f == p);
    }

    println!("\n accuracy over {trials} noisy samples:");
    println!(
        "   float reference : {:.1} %",
        100.0 * float_ok as f64 / trials as f64
    );
    println!(
        "   photonic (3-bit weights + 3-bit eoADC): {:.1} %",
        100.0 * photonic_ok as f64 / trials as f64
    );
    println!(
        "   agreement       : {:.1} %",
        100.0 * agree as f64 / trials as f64
    );

    assert!(
        photonic_ok as f64 >= 0.8 * float_ok as f64,
        "photonic pipeline lost too much accuracy"
    );
}
