//! Quickstart: build a small photonic tensor core, store weights in the
//! photonic SRAM, run a matrix–vector product through the WDM optics, and
//! read the result out of the 1-hot electro-optic ADC.
//!
//! Run with: `cargo run --example quickstart`

use photonic_tensor_core::tensor::{TensorCore, TensorCoreConfig};

fn main() {
    // A 4×4 core: one 4-wavelength vector macro per row, 3-bit weights,
    // the paper's pSRAM and eoADC operating points.
    let config = TensorCoreConfig::small_demo();
    let mut core = TensorCore::new(config);

    println!(
        "photonic tensor core: {}x{} @ {}-bit weights, {} pSRAM bitcells",
        config.rows,
        config.cols,
        config.weight_bits,
        config.bitcell_count()
    );

    // Weights in [0, 1]; the core quantises them to 3-bit codes and
    // presets the pSRAM array.
    let weights = vec![
        vec![1.00, 0.00, 0.00, 0.00], // row 0 passes input 0
        vec![0.00, 0.50, 0.50, 0.00], // row 1 averages inputs 1 and 2
        vec![0.25, 0.25, 0.25, 0.25], // row 2 averages everything
        vec![0.00, 0.00, 0.00, 1.00], // row 3 passes input 3
    ];
    core.load_weights(&weights);
    println!("stored weight codes: {:?}", core.weights().read_matrix());

    // One inference: intensity-encoded inputs in [0, 1].
    let x = [0.9, 0.2, 0.6, 0.4];
    let analog = core.matvec_analog(&x);
    let codes = core.matvec(&x);
    let ideal = core.matvec_ideal(&x);

    println!("\n input vector: {x:?}");
    println!(
        " {:>5} {:>10} {:>10} {:>6}",
        "row", "ideal", "analog", "code"
    );
    for r in 0..4 {
        println!(
            " {r:>5} {:>10.4} {:>10.4} {:>6}",
            ideal[r], analog[r], codes[r]
        );
    }

    // Update the weights through the actual 20 GHz optical write path and
    // rerun — the paper's in-situ weight streaming.
    let new_codes = vec![
        vec![0, 0, 0, 7],
        vec![0, 0, 7, 0],
        vec![0, 7, 0, 0],
        vec![7, 0, 0, 0],
    ];
    let (energy, flips) = core.write_weights_transient(&new_codes);
    println!(
        "\n reloaded weights through {} optical writes ({:.2} pJ total, {:.2} pJ/flip)",
        flips,
        energy.as_picojoules(),
        energy.as_picojoules() / flips as f64
    );
    println!(" flipped matvec: {:?}", core.matvec(&x));
}
