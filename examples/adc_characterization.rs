//! Characterise the 1-hot electro-optic ADC the way a test bench would:
//! transfer function, DNL/INL, the Fig. 9 transient cases, the
//! amplifier-less trade-off, and the time-interleaved/cascaded extensions.
//!
//! Run with: `cargo run --example adc_characterization`

use photonic_tensor_core::eoadc::{
    metrics::TransferFunction, AdcPowerModel, CascadedAdc, EoAdc, EoAdcConfig, TimeInterleavedAdc,
};
use photonic_tensor_core::units::Voltage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = EoAdcConfig::paper();
    let mut adc = EoAdc::new(config);
    println!(
        "eoADC: {} bits, V_FS = {} V, {} GS/s, λ = {} nm",
        config.bits,
        config.vfs.as_volts(),
        config.sample_rate.as_gigahertz(),
        config.wavelength.as_nanometers()
    );

    // Static transfer function and linearity.
    let tf = TransferFunction::measure(&adc, 1801);
    println!("\n transfer function ({} sweep points):", tf.inputs.len());
    for (k, edge) in tf.edges().iter().enumerate() {
        match edge {
            Some(v) => println!("   code {:03b} edge at {v:.3} V", k + 1),
            None => println!("   code {:03b} missing!", k + 1),
        }
    }
    println!(
        "   peak DNL {:.3} LSB, peak INL {:.3} LSB, offset {:.3} LSB, missing codes: {:?}",
        tf.peak_dnl(),
        tf.peak_inl(),
        tf.offset_lsb().unwrap_or(f64::NAN),
        tf.missing_codes()
    );

    // The paper's three transient verification points.
    println!("\n transient conversions (125 ps window):");
    for v in [0.72, 3.30, 2.00] {
        let tc = adc.convert_transient(Voltage::from_volts(v));
        let hot: Vec<String> = tc
            .activations
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| format!("B{}", i + 1))
            .collect();
        println!(
            "   V_IN = {v:.2} V → {} → code {:03b}",
            hot.join("+"),
            tc.code?
        );
    }

    // Energy/speed variants.
    let full = AdcPowerModel::new(config);
    let lean = AdcPowerModel::without_amplifiers(config);
    println!("\n power model:");
    println!(
        "   full:     {:.2} GS/s, {:.2} mW total, {:.2} pJ/conv",
        full.sample_rate().as_gigahertz(),
        full.total().as_milliwatts(),
        full.energy_per_conversion().as_picojoules()
    );
    println!(
        "   amp-less: {:.3} GS/s, {:.2} mW total ({:.0} % electrical saving)",
        lean.sample_rate().as_gigahertz(),
        lean.total().as_milliwatts(),
        100.0 * (1.0 - lean.electrical().as_watts() / full.electrical().as_watts())
    );

    // Extensions: ×4 interleaving and 6-bit cascading.
    let ti = TimeInterleavedAdc::new(config, 4);
    println!(
        "   ×4 interleaved: {:.0} GS/s aggregate at {:.1} mW",
        ti.aggregate_rate().as_gigahertz(),
        ti.total_power().as_milliwatts()
    );
    let cascade = CascadedAdc::paper_pair();
    let v = Voltage::from_volts(1.23);
    println!(
        "   6-bit cascade: code({} V) = {:06b} (LSB {:.1} mV)",
        v.as_volts(),
        cascade.convert(v)?,
        cascade.lsb().as_volts() * 1e3
    );
    Ok(())
}
