//! Reproducibility and serialisation guarantees.
//!
//! Every stochastic path in the workspace takes an explicit RNG, so
//! seeded runs must be bit-identical; every configuration and report type
//! is a serde data structure, so artefacts round-trip through JSON.

use photonic_tensor_core::eoadc::{monte_carlo, EoAdcConfig};
use photonic_tensor_core::photonics::NoiseModel;
use photonic_tensor_core::psram::PsramConfig;
use photonic_tensor_core::tensor::performance::PerformanceModel;
use photonic_tensor_core::tensor::{TensorCore, TensorCoreConfig};
use photonic_tensor_core::units::{Current, Voltage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn loaded_core() -> TensorCore {
    let mut core = TensorCore::new(TensorCoreConfig::small_demo());
    core.load_weight_codes(&[
        vec![7, 0, 0, 0],
        vec![0, 7, 0, 0],
        vec![3, 3, 3, 3],
        vec![1, 2, 4, 6],
    ]);
    core
}

#[test]
fn seeded_noise_sampling_is_reproducible() {
    let model = NoiseModel::paper_receiver();
    let draw = |seed: u64| -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..100)
            .map(|_| {
                model
                    .sample(Current::from_microamps(50.0), &mut rng)
                    .as_amps()
            })
            .collect()
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43));
}

#[test]
fn seeded_monte_carlo_is_reproducible() {
    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        monte_carlo(
            EoAdcConfig::paper(),
            Voltage::from_millivolts(40.0),
            8,
            181,
            &mut rng,
        )
    };
    assert_eq!(run(7), run(7));
}

/// Structural JSON comparison with a relative tolerance on numbers —
/// serde_json's default float parsing may land one ULP off the source.
fn json_approx_eq(a: &serde_json::Value, b: &serde_json::Value) -> bool {
    use serde_json::Value;
    match (a, b) {
        (Value::Number(x), Value::Number(y)) => {
            let (x, y) = (
                x.as_f64().unwrap_or(f64::NAN),
                y.as_f64().unwrap_or(f64::NAN),
            );
            (x - y).abs() <= 1e-12 * x.abs().max(y.abs()).max(1.0)
        }
        (Value::Object(x), Value::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .all(|(k, v)| y.get(k).is_some_and(|w| json_approx_eq(v, w)))
        }
        (Value::Array(x), Value::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(v, w)| json_approx_eq(v, w))
        }
        _ => a == b,
    }
}

#[test]
fn configs_round_trip_through_json() {
    let psram = PsramConfig::paper();
    let json = serde_json::to_value(psram).expect("serialise");
    let back: PsramConfig = serde_json::from_value(json.clone()).expect("deserialise");
    assert!(json_approx_eq(
        &json,
        &serde_json::to_value(back).expect("re-serialise")
    ));
    back.validate();

    let adc = EoAdcConfig::paper();
    let json = serde_json::to_value(adc).expect("serialise");
    let back: EoAdcConfig = serde_json::from_value(json.clone()).expect("deserialise");
    assert!(json_approx_eq(
        &json,
        &serde_json::to_value(back).expect("re-serialise")
    ));
    back.validate();
}

#[test]
fn performance_report_serialises_with_headline_fields() {
    let report = PerformanceModel::paper().report();
    let json = serde_json::to_string(&report).expect("serialise");
    assert!(json.contains("tops"));
    assert!(json.contains("tops_per_watt"));
    assert!(json.contains("comb_w"));
    let value: serde_json::Value = serde_json::from_str(&json).expect("parse");
    let tops = value["tops"].as_f64().expect("tops is a number");
    assert!((tops - 4.096).abs() < 0.01);
}

#[test]
fn weight_cache_invalidates_on_every_mutation_path() {
    let x = [0.9, 0.1, 0.5, 0.7];
    let codes = vec![
        vec![2, 4, 6, 0],
        vec![7, 1, 3, 5],
        vec![0, 0, 7, 7],
        vec![5, 5, 5, 5],
    ];

    // After a preset-path reload, the cached engine must answer exactly
    // like a core that never had the stale weights.
    let mut reloaded = loaded_core();
    reloaded.load_weight_codes(&codes);
    let mut fresh = TensorCore::new(TensorCoreConfig::small_demo());
    fresh.load_weight_codes(&codes);
    assert_eq!(reloaded.matvec_analog(&x), fresh.matvec_analog(&x));
    assert_eq!(reloaded.matvec(&x), fresh.matvec(&x));

    // Same after the full optical write transient.
    let mut rewritten = loaded_core();
    let _ = rewritten.write_weights_transient(&codes);
    assert_eq!(rewritten.matvec_analog(&x), fresh.matvec_analog(&x));
    assert_eq!(rewritten.matvec(&x), fresh.matvec(&x));
}

#[test]
fn parallel_engine_is_bit_identical_to_sequential() {
    let mut par = loaded_core();
    par.set_parallel(true);
    let mut seq = loaded_core();
    seq.set_parallel(false);

    let batch: Vec<Vec<f64>> = (0..8)
        .map(|i| (0..4).map(|c| ((3 * i + c) % 10) as f64 / 9.0).collect())
        .collect();
    for x in &batch {
        assert_eq!(par.matvec_analog(x), seq.matvec_analog(x));
        assert_eq!(par.matvec(x), seq.matvec(x));
    }
    assert_eq!(par.matmul(&batch), seq.matmul(&batch));

    // The seeded noisy path must also be order-independent: per-row and
    // per-sample seeds are drawn up front from the caller's RNG.
    let noise = NoiseModel::paper_receiver();
    let mut rng_par = StdRng::seed_from_u64(2024);
    let mut rng_seq = StdRng::seed_from_u64(2024);
    for x in &batch {
        assert_eq!(
            par.matvec_noisy(x, &noise, &mut rng_par),
            seq.matvec_noisy(x, &noise, &mut rng_seq)
        );
    }
    assert_eq!(
        par.matmul_noisy(&batch, &noise, &mut rng_par),
        seq.matmul_noisy(&batch, &noise, &mut rng_seq)
    );
}

#[test]
fn prbs_generator_is_deterministic_across_calls() {
    use photonic_tensor_core::signal::generate::prbs;
    use photonic_tensor_core::units::Seconds;
    let a = prbs(
        Seconds::from_picoseconds(1.0),
        Seconds::from_picoseconds(4.0),
        128,
        0xBEEF,
        0.0,
        1.0,
    );
    let b = prbs(
        Seconds::from_picoseconds(1.0),
        Seconds::from_picoseconds(4.0),
        128,
        0xBEEF,
        0.0,
        1.0,
    );
    assert_eq!(a, b);
}
