//! Integration tests for the extension subsystems: thermal locking with
//! the compute core, noise with the eoADC, calibration with the tensor
//! read-out, streaming schedules against the metered write path.

use photonic_tensor_core::eoadc::{CalibratedAdc, EoAdc, EoAdcConfig};
use photonic_tensor_core::photonics::{HeaterLock, Mrr, NoiseModel};
use photonic_tensor_core::psram::WriteEnergyModel;
use photonic_tensor_core::tensor::{
    StreamingSchedule, TensorCore, TensorCoreConfig, VectorComputeCore, WriteParallelism,
};
use photonic_tensor_core::units::{OpticalPower, Voltage, Wavelength};

#[test]
fn heater_lock_restores_compute_accuracy_end_to_end() {
    // Free-running at +4 K the multiply is badly wrong; with the residual
    // detuning a heater lock achieves, it is indistinguishable from cold.
    let core = VectorComputeCore::paper_macro(OpticalPower::from_milliwatts(1.0));
    let x = [1.0, 1.0, 1.0, 1.0];
    let w = [7u32, 0, 7, 0];
    let drives = core.drives_for_codes(&w);
    let fs = core.full_scale_current().as_amps();
    let ideal = core.ideal_current(&x, &w).as_amps() / fs;

    let hot = core.output_current_at_drift(&x, &drives, 4.0).as_amps() / fs;
    assert!(
        (hot - ideal).abs() > 0.2,
        "4 K must visibly corrupt: {hot} vs {ideal}"
    );

    let mut lock = HeaterLock::new(
        Mrr::compute_ring_design().build(),
        Wavelength::from_nanometers(1310.0),
        10.0,
    );
    let residual_nm = lock.lock(4.0, 300).abs();
    let residual_k = residual_nm / photonic_tensor_core::photonics::calib::RING_THERMAL_NM_PER_K;
    let locked = core
        .output_current_at_drift(&x, &drives, residual_k)
        .as_amps()
        / fs;
    let cold = core.output_current(&x, &drives).as_amps() / fs;
    assert!(
        (locked - cold).abs() < 0.01,
        "locked compute ({locked}) should match cold ({cold})"
    );
}

#[test]
fn calibrated_adc_tightens_core_readout() {
    // Replace the core's raw read-out by the calibrated converter and
    // compare quantisation error against the ideal products.
    let mut core = TensorCore::new(TensorCoreConfig::small_demo());
    core.load_weight_codes(&[
        vec![7, 7, 7, 7],
        vec![5, 5, 5, 5],
        vec![3, 3, 3, 3],
        vec![1, 1, 1, 1],
    ]);
    core.set_readout_gain(1.0);
    let cal = CalibratedAdc::calibrate(EoAdc::new(*core.adc().config()), 1801);
    let vfs = core.adc().config().vfs;

    let x = [1.0, 1.0, 1.0, 1.0];
    let analog = core.matvec_analog(&x);
    let raw_codes = core.matvec(&x);
    let mut raw_err = 0.0;
    let mut cal_err = 0.0;
    for (r, &y) in analog.iter().enumerate() {
        let ideal_code = (y * 8.0).floor().min(7.0);
        raw_err += (f64::from(raw_codes[r]) - ideal_code).abs();
        let c = cal.convert(vfs * y).expect("legal");
        cal_err += (f64::from(c) - ideal_code).abs();
    }
    assert!(
        cal_err <= raw_err,
        "calibration must not worsen the read-out: raw {raw_err}, cal {cal_err}"
    );
}

#[test]
fn noise_model_is_negligible_at_core_operating_point() {
    // The eoADC sees 200 µW per ring; noisy conversion agrees with the
    // noiseless one essentially always at mid-code inputs.
    use rand::SeedableRng;
    let adc = EoAdc::new(EoAdcConfig::paper());
    let noise = NoiseModel::paper_receiver();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for k in 1..=8 {
        let v = Voltage::from_volts(0.45 * k as f64);
        let nominal = adc.convert_static(v).expect("legal");
        for _ in 0..20 {
            assert_eq!(
                adc.convert_static_noisy(v, &noise, &mut rng),
                Ok(nominal),
                "noise flipped a mid-code conversion at {} V",
                v.as_volts()
            );
        }
    }
}

#[test]
fn streaming_schedule_energy_matches_metered_writes() {
    // The analytic schedule's per-flip energy must equal what the
    // transient co-simulation actually meters.
    let cfg = TensorCoreConfig::small_demo();
    let sched =
        StreamingSchedule::new(cfg, 4, 4, 1, WriteParallelism::PerWord).with_flip_fraction(1.0);
    let analytic_per_flip = sched.report().write_energy_j / cfg.bitcell_count() as f64;

    let mut core = TensorCore::new(cfg);
    // All-ones → every bit flips from the power-up zeros.
    let codes = vec![vec![7u32; 4]; 4];
    let (metered, flips) = core.write_weights_transient(&codes);
    assert_eq!(flips, cfg.bitcell_count(), "every bitcell must flip");
    let metered_per_flip = metered.as_joules() / flips as f64;

    let rel = (metered_per_flip - analytic_per_flip).abs() / analytic_per_flip;
    assert!(
        rel < 0.05,
        "metered {metered_per_flip} vs analytic {analytic_per_flip} J/flip ({rel})"
    );
    // Both agree with the standalone energy model.
    let model = WriteEnergyModel::new(cfg.psram)
        .energy_per_switch()
        .as_joules();
    assert!((metered_per_flip - model).abs() / model < 0.05);
}

#[test]
fn interleaved_adc_speeds_up_the_performance_model() {
    use photonic_tensor_core::tensor::performance::PerformanceModel;
    use photonic_tensor_core::units::Frequency;
    // Swapping the 8 GS/s ADC for a ×4 interleaved bank raises the
    // cycle rate and throughput proportionally (at proportionally more
    // ADC power).
    let base = PerformanceModel::paper();
    let mut fast_cfg = TensorCoreConfig::paper();
    fast_cfg.adc.sample_rate = Frequency::from_gigahertz(32.0);
    // Four slices → four times the ADC's optical and electrical budget.
    fast_cfg.adc.input_power = fast_cfg.adc.input_power * 4.0;
    fast_cfg.adc.reference_power = fast_cfg.adc.reference_power * 4.0;
    fast_cfg.adc.electrical_power_watts *= 4.0;
    let fast = PerformanceModel::new(fast_cfg);
    let ratio = fast.throughput_tops() / base.throughput_tops();
    assert!((ratio - 4.0).abs() < 1e-9);
    // Efficiency moves less than 4× because only the conversion energy
    // amortises; the static optical budget stays.
    assert!(fast.tops_per_watt() > base.tops_per_watt());
    assert!(fast.tops_per_watt() < 4.0 * base.tops_per_watt());
}
