//! Cross-crate integration: the full §III pipeline from optical weight
//! writes through WDM multiplication to eoADC read-out.

use photonic_tensor_core::tensor::{quant, TensorCore, TensorCoreConfig};
use photonic_tensor_core::units::Voltage;

#[test]
fn transient_writes_and_preset_weights_compute_identically() {
    let codes: Vec<Vec<u32>> = (0..4)
        .map(|r| (0..4).map(|c| ((3 * r + c) % 8) as u32).collect())
        .collect();
    let x = [0.9, 0.3, 0.6, 0.1];

    let mut preset = TensorCore::new(TensorCoreConfig::small_demo());
    preset.load_weight_codes(&codes);

    let mut written = TensorCore::new(TensorCoreConfig::small_demo());
    let (energy, flips) = written.write_weights_transient(&codes);
    assert!(flips > 0 && energy.as_picojoules() > 0.0);

    assert_eq!(
        preset.weights().read_matrix(),
        written.weights().read_matrix()
    );
    let a = preset.matvec_analog(&x);
    let b = written.matvec_analog(&x);
    for (ya, yb) in a.iter().zip(&b) {
        assert!(
            (ya - yb).abs() < 1e-9,
            "transiently-written weights compute differently: {ya} vs {yb}"
        );
    }
    assert_eq!(preset.matvec(&x), written.matvec(&x));
}

#[test]
fn rewriting_weights_changes_the_product() {
    let mut core = TensorCore::new(TensorCoreConfig::small_demo());
    core.load_weight_codes(&[
        vec![7, 0, 0, 0],
        vec![0, 7, 0, 0],
        vec![0, 0, 7, 0],
        vec![0, 0, 0, 7],
    ]);
    let x = [1.0, 0.0, 0.0, 0.0];
    let before = core.matvec_analog(&x);
    core.write_weights_transient(&[
        vec![0, 0, 0, 7],
        vec![0, 0, 7, 0],
        vec![0, 7, 0, 0],
        vec![7, 0, 0, 0],
    ]);
    let after = core.matvec_analog(&x);
    assert!(before[0] > 0.15 && after[0] < 0.03, "row 0 flipped off");
    assert!(before[3] < 0.03 && after[3] > 0.15, "row 3 flipped on");
}

#[test]
fn quantized_float_weights_round_trip_through_psram() {
    let w: Vec<Vec<f64>> = vec![
        vec![0.0, 0.33, 0.66, 1.0],
        vec![1.0, 0.66, 0.33, 0.0],
        vec![0.5, 0.5, 0.5, 0.5],
        vec![0.15, 0.85, 0.15, 0.85],
    ];
    let mut core = TensorCore::new(TensorCoreConfig::small_demo());
    core.load_weights(&w);
    let expected = quant::quantize_matrix(&w, 3);
    assert_eq!(core.weights().read_matrix(), expected);
}

#[test]
fn adc_codes_follow_analog_ordering_on_the_paper_core() {
    let mut core = TensorCore::new(TensorCoreConfig::paper());
    let w: Vec<Vec<u32>> = (0..16)
        .map(|r| (0..16).map(|c| ((r + 2 * c) % 8) as u32).collect())
        .collect();
    core.load_weight_codes(&w);
    core.set_readout_gain(2.0);
    let x: Vec<f64> = (0..16).map(|i| ((i * 7) % 16) as f64 / 15.0).collect();

    let analog = core.matvec_analog(&x);
    let codes = core.matvec(&x);
    // Codes must be a monotone function of the analog values.
    let mut pairs: Vec<(f64, u16)> = analog.into_iter().zip(codes).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for w in pairs.windows(2) {
        assert!(
            w[1].1 >= w[0].1,
            "ADC codes out of order: analog {} → {} but {} → {}",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }
}

#[test]
fn readout_gain_trades_range_for_resolution() {
    let mut core = TensorCore::new(TensorCoreConfig::small_demo());
    core.load_weight_codes(&[
        vec![1, 1, 1, 1],
        vec![2, 2, 2, 2],
        vec![1, 2, 1, 2],
        vec![2, 1, 2, 1],
    ]);
    let x = [0.5, 0.5, 0.5, 0.5];
    let low_gain = core.matvec(&x);
    core.set_readout_gain(6.0);
    let high_gain = core.matvec(&x);
    // Small products are indistinguishable at unit gain but resolve with
    // the TIA sized up.
    assert!(low_gain.iter().all(|&c| c <= 1), "tiny codes at unit gain");
    assert!(
        high_gain.iter().any(|&c| c > 1),
        "gain must move the products into the ADC's range: {high_gain:?}"
    );
}

#[test]
fn eoadc_standalone_matches_core_readout_mapping() {
    // The code the core reports equals converting the scaled analog value
    // through a standalone converter.
    let mut core = TensorCore::new(TensorCoreConfig::small_demo());
    core.load_weight_codes(&vec![vec![5, 3, 6, 2]; 4]);
    let x = [0.8, 0.6, 0.4, 0.2];
    let analog = core.matvec_analog(&x);
    let codes = core.matvec(&x);
    let adc = photonic_tensor_core::eoadc::EoAdc::new(*core.adc().config());
    for (y, code) in analog.iter().zip(&codes) {
        let v = core.adc().config().vfs * y.min(1.0);
        assert_eq!(
            adc.convert_static(Voltage::from_volts(v.as_volts()))
                .expect("legal"),
            *code
        );
    }
}
