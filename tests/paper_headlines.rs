//! Every headline number the paper prints, asserted in one place.
//!
//! | claim | paper | source |
//! |---|---|---|
//! | tensor core throughput | 4.10 TOPS | §IV-D |
//! | power efficiency | 3.02 TOPS/W | §IV-D |
//! | pSRAM update rate | 20 GHz | §IV-A |
//! | pSRAM switch energy | 0.5 pJ | §IV-A |
//! | eoADC rate | 8 GS/s | §IV-C |
//! | eoADC energy | 2.32 pJ/conv | §IV-C |
//! | eoADC optical power | 7.58 mW | §IV-C |
//! | eoADC electrical power | 11 mW | §IV-C |
//! | amp-less variant | 416.7 MS/s, −58 % | §IV-C |
//! | compute-ring FSR | 9.36 nm | §IV-B |
//! | channel spacing | 2.33 nm / 68 nm dL | §IV-B |
//! | bitcells in 16×16 core | 768 | §IV-D |

use photonic_tensor_core::eoadc::{AdcPowerModel, EoAdc, EoAdcConfig};
use photonic_tensor_core::photonics::{Mrr, OperatingPoint};
use photonic_tensor_core::psram::{PsramConfig, WriteEnergyModel};
use photonic_tensor_core::tensor::performance::PerformanceModel;
use photonic_tensor_core::tensor::TensorCoreConfig;
use photonic_tensor_core::units::{Voltage, Wavelength};

fn close(measured: f64, paper: f64, tol_frac: f64, what: &str) {
    let rel = (measured - paper).abs() / paper.abs();
    assert!(
        rel <= tol_frac,
        "{what}: measured {measured} vs paper {paper} ({:.2} % off)",
        rel * 100.0
    );
}

#[test]
fn throughput_4_10_tops() {
    close(
        PerformanceModel::paper().throughput_tops(),
        4.10,
        0.01,
        "TOPS",
    );
}

#[test]
fn efficiency_3_02_tops_per_watt() {
    close(
        PerformanceModel::paper().tops_per_watt(),
        3.02,
        0.03,
        "TOPS/W",
    );
}

#[test]
fn psram_updates_at_20_ghz_and_half_picojoule() {
    let cfg = PsramConfig::paper();
    close(cfg.update_rate.as_gigahertz(), 20.0, 1e-12, "update rate");
    close(
        WriteEnergyModel::new(cfg)
            .energy_per_switch()
            .as_picojoules(),
        0.5,
        0.15,
        "switch energy (pJ)",
    );
}

#[test]
fn eoadc_8_gsps_at_2_32_picojoules() {
    let m = AdcPowerModel::new(EoAdcConfig::paper());
    close(m.sample_rate().as_gigahertz(), 8.0, 1e-12, "eoADC rate");
    close(
        m.energy_per_conversion().as_picojoules(),
        2.32,
        0.005,
        "eoADC energy",
    );
    close(
        m.optical_wall_plug().as_milliwatts(),
        7.58,
        0.005,
        "optical power",
    );
    close(
        m.electrical().as_milliwatts(),
        11.0,
        1e-12,
        "electrical power",
    );
}

#[test]
fn amplifier_less_eoadc_tradeoff() {
    let full = AdcPowerModel::new(EoAdcConfig::paper());
    let lean = AdcPowerModel::without_amplifiers(EoAdcConfig::paper());
    close(
        lean.sample_rate().as_hertz() / 1e6,
        416.7,
        1e-6,
        "amp-less rate",
    );
    close(
        1.0 - lean.electrical().as_watts() / full.electrical().as_watts(),
        0.58,
        1e-9,
        "electrical saving",
    );
}

#[test]
fn compute_ring_fsr_and_channel_spacing() {
    let ring = Mrr::compute_ring_design().build();
    close(
        ring.fsr_near(Wavelength::from_nanometers(1310.0))
            .as_nanometers(),
        9.36,
        0.01,
        "FSR",
    );
    let shifted = Mrr::compute_ring_design().length_adjust_nm(68.0).build();
    let base_res = ring.resonance_near(
        Wavelength::from_nanometers(1310.0),
        OperatingPoint::unbiased(),
    );
    let new_res = shifted.resonance_near(
        Wavelength::from_nanometers(1312.4),
        OperatingPoint::unbiased(),
    );
    close(
        new_res.as_nanometers() - base_res.as_nanometers(),
        2.33,
        0.03,
        "channel spacing per 68 nm dL",
    );
}

#[test]
fn paper_core_has_768_bitcells_and_four_lambda_macros() {
    let cfg = TensorCoreConfig::paper();
    assert_eq!(cfg.bitcell_count(), 768);
    assert_eq!(cfg.wavelengths_per_macro, 4);
    assert_eq!(
        cfg.cols / cfg.wavelengths_per_macro,
        4,
        "four macros per 1×16 row"
    );
}

#[test]
fn fig9_codes_from_full_transient() {
    let mut adc = EoAdc::new(EoAdcConfig::paper());
    for (v, code) in [(0.72, 0b001u16), (3.30, 0b110), (2.00, 0b100)] {
        let tc = adc.convert_transient(Voltage::from_volts(v));
        assert_eq!(tc.code.expect("legal"), code, "input {v} V");
    }
}

#[test]
fn ops_accounting_matches_paper_arithmetic() {
    // 16 rows × 16 MACs × 2 ops at 8 GS/s = 4.096 TOPS.
    let model = PerformanceModel::paper();
    assert_eq!(model.ops_per_cycle(), 512);
    close(model.cycle_rate().as_gigahertz(), 8.0, 1e-12, "cycle rate");
}
