//! Cross-crate property-based tests (proptest) on the core invariants.

use photonic_tensor_core::circuit::CeilingRomDecoder;
use photonic_tensor_core::eoadc::{EoAdc, EoAdcConfig, ReferenceLadder};
use photonic_tensor_core::photonics::{Mrr, OperatingPoint};
use photonic_tensor_core::psram::{PsramConfig, PsramWord};
use photonic_tensor_core::tensor::{quant, VectorComputeCore};
use photonic_tensor_core::units::{OpticalPower, Voltage, Wavelength};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The add-drop ring never creates energy at any wavelength/bias.
    #[test]
    fn mrr_is_passive(
        wl_nm in 1300.0f64..1320.0,
        v in -2.0f64..2.0,
        dl in 0.0f64..250.0,
    ) {
        let ring = Mrr::compute_ring_design().length_adjust_nm(dl).build();
        let op = OperatingPoint::at_voltage(Voltage::from_volts(v));
        let wl = Wavelength::from_nanometers(wl_nm);
        let t = ring.thru_transmission(wl, op);
        let d = ring.drop_transmission(wl, op);
        prop_assert!(t >= 0.0 && d >= 0.0);
        prop_assert!(t + d <= 1.0 + 1e-9, "gain at {wl_nm} nm, {v} V: {}", t + d);
    }

    /// Static eoADC conversion is monotone and total over the full range.
    #[test]
    fn eoadc_monotone_everywhere(step in 1usize..40) {
        let adc = EoAdc::new(EoAdcConfig::paper());
        let mut last = 0u16;
        let mut v = 0.0;
        while v <= 3.6 {
            let code = adc.convert_static(Voltage::from_volts(v))
                .expect("calibrated converter is total");
            prop_assert!(code >= last, "code dropped at {v} V");
            last = code;
            v += step as f64 * 0.005;
        }
    }

    /// The eoADC code always matches the ideal ladder code within one LSB.
    #[test]
    fn eoadc_tracks_ideal_within_one_code(v in 0.0f64..3.6) {
        let adc = EoAdc::new(EoAdcConfig::paper());
        let ladder = ReferenceLadder::new(Voltage::from_volts(3.6), 3);
        let code = adc.convert_static(Voltage::from_volts(v)).expect("legal");
        let ideal = ladder.ideal_code(Voltage::from_volts(v));
        prop_assert!(
            (i32::from(code) - i32::from(ideal)).abs() <= 1,
            "code {code} vs ideal {ideal} at {v} V"
        );
    }

    /// Any sequence of pSRAM writes leaves the cell holding the last bit.
    #[test]
    fn psram_holds_last_write(bits in proptest::collection::vec(any::<bool>(), 1..6)) {
        let mut word = PsramWord::new(PsramConfig::paper(), 1);
        for &b in &bits {
            word.store(u32::from(b));
        }
        prop_assert_eq!(word.value(), Some(u32::from(*bits.last().unwrap())));
    }

    /// Word storage round-trips every value at every width.
    #[test]
    fn psram_word_round_trips(bits in 1u32..5, raw in any::<u32>()) {
        let value = raw % (1u32 << bits);
        let word = PsramWord::preset(PsramConfig::paper(), bits, value);
        prop_assert_eq!(word.value(), Some(value));
    }

    /// The vector macro's analog output tracks the ideal product within
    /// 10 % of full scale for arbitrary inputs and weights.
    #[test]
    fn vector_macro_tracks_ideal(
        x in proptest::collection::vec(0.0f64..1.0, 4),
        w in proptest::collection::vec(0u32..8, 4),
    ) {
        let core = VectorComputeCore::paper_macro(OpticalPower::from_milliwatts(1.0));
        let drives = core.drives_for_codes(&w);
        let fs = core.full_scale_current().as_amps();
        let got = core.output_current(&x, &drives).as_amps() / fs;
        let ideal = core.ideal_current(&x, &w).as_amps() / fs;
        prop_assert!((got - ideal).abs() < 0.1, "got {got}, ideal {ideal}");
    }

    /// Quantise→dequantise error is within half a step at any precision.
    #[test]
    fn quantization_error_bounded(x in 0.0f64..1.0, bits in 1u32..12) {
        let code = quant::quantize_unsigned(x, bits);
        let back = quant::dequantize_unsigned(code, bits);
        prop_assert!((back - x).abs() <= 0.5 * quant::quantization_step(bits) + 1e-12);
    }

    /// The ceiling decoder accepts every legal pattern and rejects every
    /// illegal one, at any supported width.
    #[test]
    fn rom_decoder_totality(bits in 1u32..6, seed in any::<u64>()) {
        let rom = CeilingRomDecoder::new(bits);
        let n = rom.channel_count();
        // Legal: one hot.
        let i = (seed as usize) % n;
        let mut pattern = vec![false; n];
        pattern[i] = true;
        prop_assert_eq!(rom.decode(&pattern), Ok(i as u16));
        // Legal: adjacent pair resolves upward.
        if i + 1 < n {
            pattern[i + 1] = true;
            prop_assert_eq!(rom.decode(&pattern), Ok((i + 1) as u16));
        }
        // Illegal: non-adjacent pair.
        if i + 2 < n {
            pattern[i + 1] = false;
            pattern[i + 2] = true;
            prop_assert!(rom.decode(&pattern).is_err());
        }
    }

    /// Signed differential weights reconstruct the signed value.
    #[test]
    fn differential_weights_reconstruct(x in -1.0f64..1.0, bits in 1u32..9) {
        let (p, n) = quant::signed_to_differential(x, bits);
        let back = quant::dequantize_unsigned(p, bits) - quant::dequantize_unsigned(n, bits);
        prop_assert!((back - x).abs() <= 0.5 * quant::quantization_step(bits) + 1e-12);
    }
}
